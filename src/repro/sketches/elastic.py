"""Elastic sketch (Yang et al., SIGCOMM 2018).

The closest prior work to ReliableSketch: its heavy part also uses an
election bucket with positive and negative votes, but the negative counter is
reset on replacement, so it cannot bound the error (§7 of the paper).

Structure:

* **Heavy part** — struct-of-arrays election buckets, each holding a
  candidate key (as an interned ``int64`` id plus the object for queries),
  its positive votes, a negative-vote counter and an "ejected" flag.  When
  ``negative / positive`` exceeds the eviction ratio ``λ`` (8 in the
  original paper), the candidate is evicted to the light part and replaced.
* **Light part** — a single-array CM sketch of 8-bit counters.

Memory is split ``1 : light_ratio`` between heavy and light parts
(``light_ratio = 3`` as recommended by the original authors and used in
§6.1.4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hashing import EncodedKeyBatch, HashFamily
from repro.kernels import resolve_backend
from repro.kernels.interning import KeyInterner
from repro.kernels.scalar import EMPTY_ID, elastic_apply
from repro.metrics.memory import ELASTIC_HEAVY_BUCKET, FieldSpec, MemoryModel
from repro.sketches.base import Sketch

_LIGHT_COUNTER = MemoryModel((FieldSpec("counter", 8),))
_LIGHT_COUNTER_MAX = 255


class ElasticSketch(Sketch):
    """Elastic sketch sized from a memory budget.

    The batch datapath vectorizes the heavy-part hash (evaluated
    unconditionally, once per item) through the murmur batch kernel and
    applies the order-dependent bucket state machine through a
    conflict-free update kernel (:mod:`repro.kernels`) over the interned
    key-id arrays.  Light-part traffic falls out of that replay: items the
    kernel routes to the light part are hashed in one vectorized sub-batch
    call, evicted incumbents one by one (exactly as many light-hash
    evaluations as the scalar loop performs), and since the light part's
    saturating addition is order-independent the accumulated sums apply in
    a single scatter.  ``insert_batch``/``query_batch`` therefore stay
    bit-identical to the scalar loop — including hash-call accounting.
    """

    name = "Elastic"

    def __init__(
        self,
        memory_bytes: float,
        light_ratio: float = 3.0,
        eviction_ratio: int = 8,
        seed: int = 0,
        kernel: str | None = None,
        max_interned_keys: int | None = None,
        interner_eviction: str | None = None,
    ) -> None:
        if light_ratio <= 0:
            raise ValueError("light_ratio must be positive")
        if eviction_ratio <= 0:
            raise ValueError("eviction_ratio must be positive")
        heavy_bytes = memory_bytes / (1.0 + light_ratio)
        light_bytes = memory_bytes - heavy_bytes
        self.eviction_ratio = eviction_ratio
        self.heavy_width = max(1, ELASTIC_HEAVY_BUCKET.entries_for(heavy_bytes))
        self.light_width = max(1, _LIGHT_COUNTER.entries_for(light_bytes))
        self._family = HashFamily(seed)
        self._heavy_hash = self._family.draw(self.heavy_width)
        self._light_hash = self._family.draw(self.light_width)
        # Heavy part, struct-of-arrays: object keys for scalar queries plus
        # the interned id mirror the kernels and batch queries compare.
        self._heavy_keys: list[object | None] = [None] * self.heavy_width
        self._heavy_ids = np.full(self.heavy_width, EMPTY_ID, dtype=np.int64)
        self._heavy_positive = np.zeros(self.heavy_width, dtype=np.int64)
        self._heavy_negative = np.zeros(self.heavy_width, dtype=np.int64)
        self._heavy_flags = np.zeros(self.heavy_width, dtype=bool)
        self._light = np.zeros(self.light_width, dtype=np.int64)
        self._kernel = resolve_backend(kernel)
        self._interner = KeyInterner(
            max_keys=max_interned_keys, evict=interner_eviction
        )

    # ------------------------------------------------------------- inserts
    def _light_insert(self, key: object, value: int) -> None:
        index = self._light_hash(key)
        self._light[index] = min(_LIGHT_COUNTER_MAX, int(self._light[index]) + value)

    def _light_query(self, key: object) -> int:
        return int(self._light[self._light_hash(key)])

    def insert(self, key: object, value: int = 1) -> None:
        self._check_insert(value)
        self._insert_at(key, value, self._heavy_hash(key))

    def _insert_at(self, key: object, value: int, heavy_index: int) -> None:
        """Bucket state machine at a pre-computed heavy-part index.

        The transition itself (:func:`repro.kernels.scalar.elastic_apply`)
        is shared with the update kernels, so the scalar and batch paths
        cannot drift apart; this wrapper adds interning, the object-key
        sync and the light-part side effects.
        """
        item_id = self._interner.intern(key)
        light_self, evicted, changed = elastic_apply(
            self._heavy_ids, self._heavy_positive, self._heavy_negative,
            self._heavy_flags, heavy_index, item_id, value, self.eviction_ratio,
        )
        if changed:
            self._heavy_keys[heavy_index] = key
        if evicted is not None:
            # Evict the incumbent to the light part.
            self._light_insert(self._interner.id_to_key[evicted[0]], evicted[1])
        if light_self:
            self._light_insert(key, value)

    def insert_batch(self, keys: Sequence[object], values: Sequence[int] | int | None = None) -> None:
        batch = EncodedKeyBatch(keys)
        value_array = self._batch_values(values, len(batch))
        if not len(batch):
            return
        heavy_indexes = self._heavy_hash.index_batch(batch)
        item_ids = self._interner.intern_batch(batch.keys, batch.int_key_array)
        light_positions, evicted_ids, evicted_values, changed = self._kernel.elastic_update(
            self._heavy_ids, self._heavy_positive, self._heavy_negative,
            self._heavy_flags, self.eviction_ratio,
            heavy_indexes, item_ids, value_array,
        )
        if changed.size:
            heavy_keys = self._heavy_keys
            heavy_ids = self._heavy_ids
            id_to_key = self._interner.id_to_key
            for bucket in changed.tolist():
                heavy_keys[bucket] = id_to_key[heavy_ids[bucket]]
        if light_positions.size:
            # One vectorized light-hash call for the items the replay routed
            # to the light part (one scalar call each on the scalar path);
            # saturating addition commutes, so accumulate-then-clip is the
            # per-event result.
            light_indexes = self._light_hash.index_batch(batch.take(light_positions))
            np.add.at(self._light, light_indexes, value_array[light_positions])
        id_to_key = self._interner.id_to_key
        for evicted_id, evicted_value in zip(evicted_ids.tolist(), evicted_values.tolist()):
            index = self._light_hash(id_to_key[evicted_id])
            self._light[index] += evicted_value
        if light_positions.size or evicted_ids.size:
            np.minimum(self._light, _LIGHT_COUNTER_MAX, out=self._light)

    # ------------------------------------------------------------- queries
    def query(self, key: object) -> int:
        return self._query_at(key, self._heavy_hash(key))

    def _query_at(self, key: object, heavy_index: int) -> int:
        if self._heavy_keys[heavy_index] == key:
            estimate = int(self._heavy_positive[heavy_index])
            if self._heavy_flags[heavy_index]:
                estimate += self._light_query(key)
            return estimate
        return self._light_query(key)

    def query_batch(self, keys: Sequence[object]) -> np.ndarray:
        batch = EncodedKeyBatch(keys)
        heavy_indexes = self._heavy_hash.index_batch(batch)
        item_ids = self._interner.lookup_batch(batch.keys, batch.int_key_array)
        matches = self._heavy_ids[heavy_indexes] == item_ids
        flags = self._heavy_flags[heavy_indexes]
        estimates = np.where(matches, self._heavy_positive[heavy_indexes], 0)
        # The light part is read exactly where the scalar path reads it: on
        # every miss and on ejected-flag hits (hash-call counts match).
        need_light = ~matches | flags
        light_positions = np.flatnonzero(need_light)
        if light_positions.size:
            light_indexes = self._light_hash.index_batch(batch.take(light_positions))
            readings = self._light[light_indexes]
            estimates[light_positions] = np.where(
                matches[light_positions],
                estimates[light_positions] + readings,
                readings,
            )
        return estimates

    def memory_bytes(self) -> float:
        return ELASTIC_HEAVY_BUCKET.bytes_for(self.heavy_width) + _LIGHT_COUNTER.bytes_for(
            self.light_width
        )

    def hash_calls(self) -> int:
        return self._family.total_calls()

    def reset_hash_calls(self) -> None:
        self._family.reset_counters()

    def parameters(self) -> dict:
        return {
            "heavy_width": self.heavy_width,
            "light_width": self.light_width,
            "eviction_ratio": self.eviction_ratio,
        }

"""Elastic sketch (Yang et al., SIGCOMM 2018).

The closest prior work to ReliableSketch: its heavy part also uses an
election bucket with positive and negative votes, but the negative counter is
reset on replacement, so it cannot bound the error (§7 of the paper).

Structure:

* **Heavy part** — an array of buckets, each holding a candidate key, its
  positive votes, a negative-vote counter and an "ejected" flag.  When
  ``negative / positive`` exceeds the eviction ratio ``λ`` (8 in the original
  paper), the candidate is evicted to the light part and replaced.
* **Light part** — a single-array CM sketch of 8-bit counters.

Memory is split ``1 : light_ratio`` between heavy and light parts
(``light_ratio = 3`` as recommended by the original authors and used in
§6.1.4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hashing import EncodedKeyBatch, HashFamily
from repro.metrics.memory import ELASTIC_HEAVY_BUCKET, FieldSpec, MemoryModel
from repro.sketches.base import Sketch

_LIGHT_COUNTER = MemoryModel((FieldSpec("counter", 8),))
_LIGHT_COUNTER_MAX = 255


class _HeavyBucket:
    """One heavy-part bucket: candidate key, votes and eviction flag."""

    __slots__ = ("key", "positive", "negative", "flag")

    def __init__(self) -> None:
        self.key = None
        self.positive = 0
        self.negative = 0
        self.flag = False


class ElasticSketch(Sketch):
    """Elastic sketch sized from a memory budget.

    The batch datapath vectorizes the heavy-part hash (evaluated
    unconditionally, once per item) through the murmur batch kernel; the
    bucket state machine then replays in stream order, because eviction
    decisions depend on every predecessor, and light-part accesses stay
    scalar because whether an item touches the light part at all is decided
    by that replay.  This keeps ``insert_batch``/``query_batch`` bit-identical
    to the scalar loop — including hash-call accounting — while removing the
    dominant per-item hashing overhead.
    """

    name = "Elastic"

    def __init__(
        self,
        memory_bytes: float,
        light_ratio: float = 3.0,
        eviction_ratio: int = 8,
        seed: int = 0,
    ) -> None:
        if light_ratio <= 0:
            raise ValueError("light_ratio must be positive")
        if eviction_ratio <= 0:
            raise ValueError("eviction_ratio must be positive")
        heavy_bytes = memory_bytes / (1.0 + light_ratio)
        light_bytes = memory_bytes - heavy_bytes
        self.eviction_ratio = eviction_ratio
        self.heavy_width = max(1, ELASTIC_HEAVY_BUCKET.entries_for(heavy_bytes))
        self.light_width = max(1, _LIGHT_COUNTER.entries_for(light_bytes))
        self._family = HashFamily(seed)
        self._heavy_hash = self._family.draw(self.heavy_width)
        self._light_hash = self._family.draw(self.light_width)
        self._heavy = [_HeavyBucket() for _ in range(self.heavy_width)]
        self._light = [0] * self.light_width

    def _light_insert(self, key: object, value: int) -> None:
        index = self._light_hash(key)
        self._light[index] = min(_LIGHT_COUNTER_MAX, self._light[index] + value)

    def _light_query(self, key: object) -> int:
        return self._light[self._light_hash(key)]

    def insert(self, key: object, value: int = 1) -> None:
        self._check_insert(value)
        self._insert_at(key, value, self._heavy_hash(key))

    def _insert_at(self, key: object, value: int, heavy_index: int) -> None:
        """Bucket state machine at a pre-computed heavy-part index.

        Shared verbatim by the scalar and batch insert paths, so the two
        cannot drift apart.
        """
        bucket = self._heavy[heavy_index]
        if bucket.key is None:
            bucket.key = key
            bucket.positive = value
            bucket.negative = 0
            bucket.flag = False
            return
        if bucket.key == key:
            bucket.positive += value
            return
        bucket.negative += value
        if bucket.negative >= self.eviction_ratio * bucket.positive:
            # Evict the incumbent to the light part and install the newcomer.
            self._light_insert(bucket.key, bucket.positive)
            bucket.key = key
            bucket.positive = value
            bucket.negative = 1  # Elastic resets the vote-all counter.
            bucket.flag = True
        else:
            self._light_insert(key, value)

    def query(self, key: object) -> int:
        return self._query_at(key, self._heavy_hash(key))

    def _query_at(self, key: object, heavy_index: int) -> int:
        bucket = self._heavy[heavy_index]
        if bucket.key == key:
            estimate = bucket.positive
            if bucket.flag:
                estimate += self._light_query(key)
            return estimate
        return self._light_query(key)

    def insert_batch(self, keys: Sequence[object], values: Sequence[int] | int | None = None) -> None:
        batch = EncodedKeyBatch(keys)
        value_list = self._batch_values(values, len(batch)).tolist()
        # The heavy hash is evaluated once per item unconditionally, so it
        # vectorizes; light-part traffic depends on the replayed eviction
        # decisions and keeps its conditional scalar hashing.
        heavy_indexes = self._heavy_hash.index_batch(batch).tolist()
        for key, value, heavy_index in zip(batch.keys, value_list, heavy_indexes):
            self._insert_at(key, value, heavy_index)

    def query_batch(self, keys: Sequence[object]) -> np.ndarray:
        batch = EncodedKeyBatch(keys)
        heavy_indexes = self._heavy_hash.index_batch(batch).tolist()
        return np.fromiter(
            (
                self._query_at(key, heavy_index)
                for key, heavy_index in zip(batch.keys, heavy_indexes)
            ),
            dtype=np.int64,
            count=len(batch),
        )

    def memory_bytes(self) -> float:
        return ELASTIC_HEAVY_BUCKET.bytes_for(self.heavy_width) + _LIGHT_COUNTER.bytes_for(
            self.light_width
        )

    def hash_calls(self) -> int:
        return self._family.total_calls()

    def reset_hash_calls(self) -> None:
        self._family.reset_counters()

    def parameters(self) -> dict:
        return {
            "heavy_width": self.heavy_width,
            "light_width": self.light_width,
            "eviction_ratio": self.eviction_ratio,
        }

"""Frequent / Misra-Gries summary (Demaine, López-Ortiz & Munro 2002).

The second heap-based baseline named in Table 1.  Maintains up to
``capacity`` counters; an unmonitored arrival either claims a free counter or
decrements every counter (the generalisation to weighted arrivals decrements
by the largest amount that keeps all counters non-negative).  Estimates are
underestimates, in contrast to CM/CU/SpaceSaving.
"""

from __future__ import annotations

from repro.metrics.memory import KEY_COUNTER_PAIR
from repro.sketches.base import Sketch


class FrequentSketch(Sketch):
    """Misra-Gries frequent-items summary."""

    name = "Frequent"

    def __init__(self, memory_bytes: float | None = None, capacity: int | None = None) -> None:
        if capacity is None:
            if memory_bytes is None:
                raise ValueError("provide either memory_bytes or capacity")
            capacity = KEY_COUNTER_PAIR.entries_for(memory_bytes)
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._counters: dict[object, int] = {}
        #: Total value removed by global decrements — bounds the underestimate.
        self.decremented_total = 0

    def insert(self, key: object, value: int = 1) -> None:
        self._check_insert(value)
        if key in self._counters:
            self._counters[key] += value
            return
        if len(self._counters) < self.capacity:
            self._counters[key] = value
            return
        # Weighted Misra-Gries: subtract the largest amount that keeps every
        # counter (including the newcomer's implicit counter) non-negative.
        smallest = min(self._counters.values())
        decrement = min(value, smallest)
        self.decremented_total += decrement
        remaining = value - decrement
        if decrement:
            survivors = {}
            for existing_key, count in self._counters.items():
                count -= decrement
                if count > 0:
                    survivors[existing_key] = count
            self._counters = survivors
        if remaining > 0 and len(self._counters) < self.capacity:
            self._counters[key] = remaining

    def query(self, key: object) -> int:
        return self._counters.get(key, 0)

    def monitored_keys(self) -> list[object]:
        """Keys currently holding a counter."""
        return list(self._counters.keys())

    def memory_bytes(self) -> float:
        return KEY_COUNTER_PAIR.bytes_for(self.capacity)

    def parameters(self) -> dict:
        return {"capacity": self.capacity}

"""CocoSketch (Zhang et al., SIGCOMM 2021).

A counter-based competitor from §6.1.4.  Each of ``d`` arrays stores
``(key, counter)`` pairs.  On a hash collision the incumbent is replaced
*probabilistically*, with probability ``value / (counter + value)``, which
keeps the per-key estimate unbiased while using a single counter per bucket.
The paper uses ``d = 2`` arrays as recommended by the original authors.

The state is struct-of-arrays (``int64`` counters plus interned key ids,
with the key objects mirrored for scalar queries), and both datapaths run
through the shared kernel transitions (:mod:`repro.kernels`): the scalar
``insert`` applies :func:`repro.kernels.scalar.coco_apply` per item, while
``insert_batch`` dispatches the whole chunk to the bound update-kernel
backend.  Replacement draws come from the counter-based RNG keyed on
``(seed, stream position)``, so scalar, batched and kernel-backend runs are
bit-identical for any chunking.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hashing import EncodedKeyBatch, HashFamily
from repro.hashing.families import keys_from_arrays, keys_to_arrays
from repro.kernels import resolve_backend
from repro.kernels.interning import KeyInterner
from repro.kernels.scalar import EMPTY_ID, coco_apply
from repro.metrics.memory import KEY_COUNTER_PAIR
from repro.sketches.base import Sketch


class CocoSketch(Sketch):
    """CocoSketch sized from a memory budget.

    Parameters
    ----------
    memory_bytes:
        Total budget, split across ``depth`` arrays of (key, counter) slots.
    depth:
        Number of arrays (2 as recommended and used in the paper).
    seed:
        Seeds both the hash family and the replacement draws, so runs are
        reproducible.
    kernel:
        Update-kernel backend name (``None`` follows the dispatch default).
    max_interned_keys / interner_eviction:
        Bound (and optionally LRU-recycle) the key-interner id space; see
        :class:`repro.kernels.interning.KeyInterner`.
    """

    name = "Coco"
    snapshotable = True

    def __init__(
        self,
        memory_bytes: float,
        depth: int = 2,
        seed: int = 0,
        kernel: str | None = None,
        max_interned_keys: int | None = None,
        interner_eviction: str | None = None,
    ) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        total_slots = KEY_COUNTER_PAIR.entries_for(memory_bytes)
        self.depth = depth
        self.width = max(1, total_slots // depth)
        self._family = HashFamily(seed)
        self._hashes = self._family.draw_many(depth, self.width)
        self._key_ids = np.full((depth, self.width), EMPTY_ID, dtype=np.int64)
        self._counts = np.zeros((depth, self.width), dtype=np.int64)
        self._keys: list[list[object | None]] = [
            [None] * self.width for _ in range(depth)
        ]
        self._kernel = resolve_backend(kernel)
        self.max_interned_keys = max_interned_keys
        self.interner_eviction = interner_eviction
        self._interner = self._new_interner()
        self._rng_seed = seed
        self._draws = 0

    def _new_interner(self) -> KeyInterner:
        return KeyInterner(
            max_keys=self.max_interned_keys, evict=self.interner_eviction
        )

    # ------------------------------------------------------------- inserts
    def insert(self, key: object, value: int = 1) -> None:
        self._check_insert(value)
        # All d cells are evaluated up front (the hardware model this
        # competitor comes from probes its arrays in parallel), matching the
        # batch datapath's per-row index_batch accounting.
        cells = [hash_fn(key) for hash_fn in self._hashes]
        item_id = self._interner.intern(key)
        position = self._draws
        self._draws += 1
        row = coco_apply(
            self._key_ids, self._counts, cells, item_id, value,
            self._rng_seed, position,
        )
        if row >= 0:
            self._keys[row][cells[row]] = key

    def insert_batch(
        self, keys: Sequence[object], values: Sequence[int] | int | None = None
    ) -> None:
        batch = EncodedKeyBatch(keys)
        value_array = self._batch_values(values, len(batch))
        if not len(batch):
            return
        indexes = np.stack([hash_fn.index_batch(batch) for hash_fn in self._hashes])
        item_ids = self._interner.intern_batch(batch.keys, batch.int_key_array)
        positions = np.arange(
            self._draws, self._draws + len(batch), dtype=np.int64
        )
        self._draws += len(batch)
        rows, cells = self._kernel.coco_update(
            self._key_ids, self._counts, indexes, item_ids, value_array,
            positions, self._rng_seed,
        )
        self._sync_changed(rows, cells)

    def _sync_changed(self, rows: np.ndarray, cells: np.ndarray) -> None:
        """Re-sync the object-key mirror at every (row, cell) the kernel changed."""
        if not rows.size:
            return
        id_to_key = self._interner.id_to_key
        key_table = self._keys
        rows_u, cells_u = np.divmod(np.unique(rows * self.width + cells), self.width)
        ids = self._key_ids[rows_u, cells_u].tolist()
        for row, cell, item_id in zip(rows_u.tolist(), cells_u.tolist(), ids):
            key_table[row][cell] = id_to_key[item_id]

    # ------------------------------------------------------------- queries
    def query(self, key: object) -> int:
        cells = [hash_fn(key) for hash_fn in self._hashes]
        for row, cell in enumerate(cells):
            if self._keys[row][cell] == key:
                return int(self._counts[row, cell])
        return 0

    def query_batch(self, keys: Sequence[object]) -> np.ndarray:
        batch = EncodedKeyBatch(keys)
        indexes = [hash_fn.index_batch(batch) for hash_fn in self._hashes]
        ids = self._interner.lookup_batch(batch.keys, batch.int_key_array)
        estimates = np.zeros(len(batch), dtype=np.int64)
        # Reverse row order so the earliest matching row wins the overwrite,
        # mirroring the scalar first-match scan.
        for row in range(self.depth - 1, -1, -1):
            cells = indexes[row]
            matches = self._key_ids[row, cells] == ids
            estimates = np.where(matches, self._counts[row, cells], estimates)
        return estimates

    # ----------------------------------------------------------- snapshots
    def state_snapshot(self) -> dict[str, np.ndarray]:
        resident = [key for row_keys in self._keys for key in row_keys]
        arrays = keys_to_arrays(resident)
        return {
            "counts": self._counts.copy(),
            "key_tags": arrays["tags"],
            "key_lengths": arrays["lengths"],
            "key_blob": arrays["blob"],
            "draws": np.asarray([self._draws], dtype=np.int64),
        }

    def state_restore(self, state: dict[str, np.ndarray]) -> None:
        shape = (self.depth, self.width)
        slots = self.depth * self.width
        counts = self._check_snapshot_shape(state, "counts", shape).astype(np.int64)
        tags = self._check_snapshot_shape(state, "key_tags", (slots,))
        lengths = self._check_snapshot_shape(state, "key_lengths", (slots,))
        draws = self._check_snapshot_shape(state, "draws", (1,)).astype(np.int64)
        if "key_blob" not in state:
            raise ValueError("snapshot is missing the 'key_blob' array")
        resident = keys_from_arrays(tags, lengths, state["key_blob"])
        interner = self._new_interner()
        key_ids = np.full(shape, EMPTY_ID, dtype=np.int64)
        key_table: list[list[object | None]] = [
            [None] * self.width for _ in range(self.depth)
        ]
        for row in range(self.depth):
            row_keys = key_table[row]
            for cell in range(self.width):
                key = resident[row * self.width + cell]
                if key is not None:
                    key_ids[row, cell] = interner.intern(key)
                    row_keys[cell] = key
        self._counts = counts.copy()
        self._key_ids = key_ids
        self._keys = key_table
        self._interner = interner
        self._draws = int(draws[0])

    # -------------------------------------------------------- introspection
    def memory_bytes(self) -> float:
        return KEY_COUNTER_PAIR.bytes_for(self.depth * self.width)

    def hash_calls(self) -> int:
        return self._family.total_calls()

    def reset_hash_calls(self) -> None:
        self._family.reset_counters()

    def parameters(self) -> dict:
        return {"depth": self.depth, "width": self.width}

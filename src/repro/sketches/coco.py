"""CocoSketch (Zhang et al., SIGCOMM 2021).

A counter-based competitor from §6.1.4.  Each of ``d`` arrays stores
``(key, counter)`` pairs.  On a hash collision the incumbent is replaced
*probabilistically*, with probability ``value / (counter + value)``, which
keeps the per-key estimate unbiased while using a single counter per bucket.
The paper uses ``d = 2`` arrays as recommended by the original authors.
"""

from __future__ import annotations

import random

from repro.hashing import HashFamily
from repro.metrics.memory import KEY_COUNTER_PAIR
from repro.sketches.base import Sketch


class _Slot:
    """One (key, counter) slot of a CocoSketch array."""

    __slots__ = ("key", "count")

    def __init__(self) -> None:
        self.key = None
        self.count = 0


class CocoSketch(Sketch):
    """CocoSketch sized from a memory budget.

    Parameters
    ----------
    memory_bytes:
        Total budget, split across ``depth`` arrays of (key, counter) slots.
    depth:
        Number of arrays (2 as recommended and used in the paper).
    seed:
        Seeds both the hash family and the replacement RNG, so runs are
        reproducible.
    """

    name = "Coco"

    def __init__(self, memory_bytes: float, depth: int = 2, seed: int = 0) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        total_slots = KEY_COUNTER_PAIR.entries_for(memory_bytes)
        self.depth = depth
        self.width = max(1, total_slots // depth)
        self._family = HashFamily(seed)
        self._hashes = self._family.draw_many(depth, self.width)
        self._tables = [[_Slot() for _ in range(self.width)] for _ in range(depth)]
        self._rng = random.Random(seed)

    def insert(self, key: object, value: int = 1) -> None:
        self._check_insert(value)
        # Find the matching or smallest-count slot among the d mapped slots.
        matched = None
        smallest = None
        for table, hash_fn in zip(self._tables, self._hashes):
            slot = table[hash_fn(key)]
            if slot.key == key:
                matched = slot
                break
            if smallest is None or slot.count < smallest.count:
                smallest = slot
        if matched is not None:
            matched.count += value
            return
        assert smallest is not None
        if smallest.key is None:
            smallest.key = key
            smallest.count = value
            return
        # Unbiased probabilistic replacement of the smallest mapped slot.
        smallest.count += value
        if self._rng.random() < value / smallest.count:
            smallest.key = key

    def query(self, key: object) -> int:
        for table, hash_fn in zip(self._tables, self._hashes):
            slot = table[hash_fn(key)]
            if slot.key == key:
                return slot.count
        return 0

    def memory_bytes(self) -> float:
        return KEY_COUNTER_PAIR.bytes_for(self.depth * self.width)

    def hash_calls(self) -> int:
        return self._family.total_calls()

    def reset_hash_calls(self) -> None:
        self._family.reset_counters()

    def parameters(self) -> dict:
        return {"depth": self.depth, "width": self.width}

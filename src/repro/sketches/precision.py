"""PRECISION (Ben-Basat et al., ICNP 2018).

Probabilistic-recirculation heavy-hitter detection for programmable
switches, used as a competitor in Figures 7 and 10.  Like HashPipe it keeps
``d`` stages of (key, counter) slots, but instead of always evicting at the
first stage it admits an unmatched key only *probabilistically*, with
probability ``1 / (min_count + 1)`` — emulating the recirculation budget of a
real switch.  This avoids HashPipe's duplicate entries at the cost of a small
admission delay for emerging heavy hitters.

The paper uses ``d = 3`` stages for best performance.
"""

from __future__ import annotations

import random

from repro.hashing import HashFamily
from repro.metrics.memory import KEY_COUNTER_PAIR
from repro.sketches.base import Sketch


class _Slot:
    """One (key, counter) slot of a PRECISION stage."""

    __slots__ = ("key", "count")

    def __init__(self) -> None:
        self.key = None
        self.count = 0


class Precision(Sketch):
    """PRECISION sized from a memory budget."""

    name = "PRECISION"

    def __init__(self, memory_bytes: float, depth: int = 3, seed: int = 0) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        total_slots = KEY_COUNTER_PAIR.entries_for(memory_bytes)
        self.depth = depth
        self.width = max(1, total_slots // depth)
        self._family = HashFamily(seed)
        self._hashes = self._family.draw_many(depth, self.width)
        self._stages = [[_Slot() for _ in range(self.width)] for _ in range(depth)]
        self._rng = random.Random(seed)
        #: Number of simulated recirculations (entry replacements).
        self.recirculations = 0

    def insert(self, key: object, value: int = 1) -> None:
        self._check_insert(value)
        minimum_slot: _Slot | None = None
        for stage, hash_fn in zip(self._stages, self._hashes):
            slot = stage[hash_fn(key)]
            if slot.key == key:
                slot.count += value
                return
            if slot.key is None:
                slot.key, slot.count = key, value
                return
            if minimum_slot is None or slot.count < minimum_slot.count:
                minimum_slot = slot
        assert minimum_slot is not None
        # Probabilistic recirculation: replace the minimum entry with
        # probability value / (min_count + value); on success the new entry
        # starts from min_count + value, preserving the overestimate bound.
        if self._rng.random() < value / (minimum_slot.count + value):
            self.recirculations += 1
            minimum_slot.key = key
            minimum_slot.count += value

    def query(self, key: object) -> int:
        for stage, hash_fn in zip(self._stages, self._hashes):
            slot = stage[hash_fn(key)]
            if slot.key == key:
                return slot.count
        return 0

    def memory_bytes(self) -> float:
        return KEY_COUNTER_PAIR.bytes_for(self.depth * self.width)

    def hash_calls(self) -> int:
        return self._family.total_calls()

    def reset_hash_calls(self) -> None:
        self._family.reset_counters()

    def parameters(self) -> dict:
        return {"depth": self.depth, "width": self.width}

"""Common interface shared by every sketch in the repository.

The experiment harness treats all algorithms uniformly: construct from a
memory budget, feed a stream through ``insert``, then compare ``query``
against the ground truth.  Keeping the interface minimal (two methods plus
introspection helpers) mirrors the abstract "stream summary" problem of §2.1.

Since the batch-first datapath rework, the interface also carries a batch
contract: ``insert_batch(keys, values)`` / ``query_batch(keys)`` must be
*observably equivalent* to the scalar loop — same estimates bit for bit,
same hash-call accounting, same statistics — for any chunking of the stream.
The base class provides the scalar fallback loop; sketches with a vectorized
datapath (ReliableSketch, CM, CU, Count) override it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class SketchDescription:
    """Static description of a sketch instance for reports and tables."""

    name: str
    memory_bytes: float
    parameters: dict


class Sketch(abc.ABC):
    """Abstract base class of all stream-summary sketches."""

    #: Human-readable algorithm name, overridden by subclasses.
    name: str = "sketch"

    @abc.abstractmethod
    def insert(self, key: object, value: int = 1) -> None:
        """Process one stream item ``<key, value>`` (value must be positive)."""

    @abc.abstractmethod
    def query(self, key: object) -> int:
        """Return the estimated value sum of ``key``."""

    def insert_batch(self, keys: Sequence[object], values: Sequence[int] | int | None = None) -> None:
        """Insert a batch of items, equivalent to a scalar ``insert`` loop.

        Parameters
        ----------
        keys:
            Stream keys, in stream order (order matters for order-dependent
            sketches such as CU and ReliableSketch).
        values:
            Per-item positive values, a single int applied to every key, or
            ``None`` for the unit-value default.

        The default implementation is the scalar loop; overrides vectorize
        but must stay bit-identical to it.
        """
        if values is None or isinstance(values, int):
            value = 1 if values is None else values
            for key in keys:
                self.insert(key, value)
        else:
            if len(values) != len(keys):
                raise ValueError("values must match the number of keys")
            for key, item_value in zip(keys, values):
                self.insert(key, int(item_value))

    def query_batch(self, keys: Sequence[object]) -> np.ndarray:
        """Estimated value sums of a batch of keys as an ``int64`` array.

        The default implementation loops over :meth:`query`; overrides
        vectorize but must return bit-identical estimates.
        """
        return np.fromiter(
            (self.query(key) for key in keys), dtype=np.int64, count=len(keys)
        )

    def insert_stream(self, items: Iterable, batch_size: int | None = None) -> None:
        """Insert every item of an iterable of ``(key, value)`` pairs.

        With ``batch_size`` set, items are buffered into chunks and fed
        through :meth:`insert_batch` — the batch datapath of the sketch, when
        it has one — instead of the per-item scalar path.
        """
        if batch_size is None:
            for key, value in items:
                self.insert(key, value)
            return
        # Imported here: repro.streams is a leaf package, but keeping the
        # import local avoids widening sketch import time for scalar users.
        from repro.streams.items import chunked

        for chunk in chunked(items, batch_size):
            self.insert_batch(
                [key for key, _ in chunk], [value for _, value in chunk]
            )

    def memory_bytes(self) -> float:
        """Configured memory footprint of the data structure, in bytes."""
        raise NotImplementedError

    def hash_calls(self) -> int:
        """Total number of hash-function evaluations so far (Figure 16)."""
        return 0

    def reset_hash_calls(self) -> None:
        """Zero the hash-call counters before a measurement phase."""

    def describe(self) -> SketchDescription:
        """Summarise this instance for experiment reports."""
        return SketchDescription(self.name, self.memory_bytes(), self.parameters())

    def parameters(self) -> dict:
        """Algorithm-specific parameters worth recording in reports."""
        return {}

    @staticmethod
    def _check_insert(value: int) -> None:
        """Shared validation: the stream-summary problem assumes positive values."""
        if value <= 0:
            raise ValueError("inserted value must be positive")

    @staticmethod
    def _batch_values(values: Sequence[int] | int | None, count: int) -> np.ndarray:
        """Normalise and validate batch values to a positive ``int64`` array.

        Shared by the vectorized ``insert_batch`` overrides; validation
        happens up front for the whole batch (the scalar loop validates item
        by item, so an invalid value mid-batch aborts earlier here — the
        accepted inputs are identical).
        """
        if values is None:
            value_array = np.ones(count, dtype=np.int64)
        elif isinstance(values, int):
            value_array = np.full(count, values, dtype=np.int64)
        else:
            value_array = np.asarray(values, dtype=np.int64)
        if value_array.shape != (count,):
            raise ValueError("values must match the number of keys")
        if value_array.size and int(value_array.min()) <= 0:
            raise ValueError("inserted value must be positive")
        return value_array

"""Common interface shared by every sketch in the repository.

The experiment harness treats all algorithms uniformly: construct from a
memory budget, feed a stream through ``insert``, then compare ``query``
against the ground truth.  Keeping the interface minimal (two methods plus
introspection helpers) mirrors the abstract "stream summary" problem of §2.1.

Since the batch-first datapath rework, the interface also carries a batch
contract: ``insert_batch(keys, values)`` / ``query_batch(keys)`` must be
*observably equivalent* to the scalar loop — same estimates bit for bit,
same hash-call accounting, same statistics — for any chunking of the stream.
The base class provides the scalar fallback loop; sketches with a vectorized
datapath (ReliableSketch, CM, CU, Count, Elastic) override it.

The sharded-ingest subsystem adds a *merge contract* on top: sketches whose
state is a pure function of the multiset of inserted items (CM, Count) set
``mergeable = True`` and implement :meth:`Sketch.merge` so that merging
sketches fed disjoint partitions of a stream is bit-identical to one sketch
fed the whole stream.  Order-dependent sketches either raise
:class:`UnmergeableSketchError` or, like CU, document the weaker guarantee
their merge provides.

The distributed-ingest subsystem (``repro.distributed``) extends the merge
contract with *state snapshots*: mergeable sketches implement
:meth:`Sketch.state_snapshot` / :meth:`Sketch.state_restore` so a remote
worker can ship its table state over a wire to a collector, which restores
it into a structurally identical replica and merges.  Restoring a snapshot
must reproduce the donor sketch exactly (every query answers identically),
which is what makes remote ingest bit-identical to local ingest.

The temporal subsystem (``repro.temporal``) adds the *delta contract*, the
inverse of merging: sketches whose state is a linear function of the stream
(CM, Count — element-wise table addition) set ``subtractable = True`` and
implement :meth:`Sketch.subtract` / :meth:`Sketch.state_delta` so the
difference of two epoch snapshots is exactly the sketch of the items
between them.  CU stays unsubtractable: its merge is an upper bound, so a
difference of CU tables has no windowed meaning.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

#: Default ``insert_stream`` chunk size.  Chunks amortize the per-batch
#: encode/dispatch overhead while keeping the working set cache-resident;
#: bit-identical to the scalar loop by the parity contract.
DEFAULT_STREAM_BATCH = 4096


@dataclass(frozen=True)
class SketchDescription:
    """Static description of a sketch instance for reports and tables."""

    name: str
    memory_bytes: float
    parameters: dict


class UnmergeableSketchError(NotImplementedError):
    """Raised when :meth:`Sketch.merge` is called on a sketch without a
    lossless merge operation (order-dependent or replacement-based state)."""


class Sketch(abc.ABC):
    """Abstract base class of all stream-summary sketches."""

    #: Human-readable algorithm name, overridden by subclasses.
    name: str = "sketch"

    #: Capability flag of the merge contract: True when :meth:`merge` is
    #: implemented and merging sketches fed disjoint stream partitions equals
    #: one sketch fed the full stream (exactly for CM/Count; CU documents a
    #: weaker guarantee).  Checked by ``ShardedSketch.merge_shards`` and the
    #: registry's ``is_mergeable``.
    mergeable: bool = False

    #: Capability flag of the delta contract: True when :meth:`subtract` /
    #: :meth:`state_delta` are implemented, i.e. the sketch's state is a
    #: *linear* function of the inserted multiset, so subtracting an earlier
    #: state from a later one yields exactly the sketch of the items in
    #: between.  Strictly stronger than ``mergeable``: CU merges (upper
    #: bound) but cannot subtract — an upper-bound difference has no
    #: windowed meaning.  Checked by the sliding-window reads of
    #: ``repro.temporal`` and the registry's ``supports_deltas``.
    subtractable: bool = False

    #: Capability flag of the snapshot half of the contract: True when
    #: :meth:`state_snapshot` / :meth:`state_restore` are implemented, i.e.
    #: the sketch's whole mutable state round-trips through named arrays.
    #: Every mergeable sketch is snapshotable (snapshots are how distributed
    #: workers ship state), but not vice versa: ReliableSketch snapshots its
    #: layers yet stays unmergeable (lock/replace decisions are
    #: order-dependent).  Snapshot support is what the distributed ingest
    #: pipeline and the serving layer (``repro.serve``) actually require.
    snapshotable: bool = False

    @abc.abstractmethod
    def insert(self, key: object, value: int = 1) -> None:
        """Process one stream item ``<key, value>`` (value must be positive)."""

    @abc.abstractmethod
    def query(self, key: object) -> int:
        """Return the estimated value sum of ``key``."""

    def insert_batch(self, keys: Sequence[object], values: Sequence[int] | int | None = None) -> None:
        """Insert a batch of items, equivalent to a scalar ``insert`` loop.

        Parameters
        ----------
        keys:
            Stream keys, in stream order (order matters for order-dependent
            sketches such as CU and ReliableSketch).
        values:
            Per-item positive values, a single int applied to every key, or
            ``None`` for the unit-value default.

        The default implementation is the scalar loop; overrides vectorize
        but must stay bit-identical to it.
        """
        if values is None or isinstance(values, int):
            value = 1 if values is None else values
            for key in keys:
                self.insert(key, value)
        else:
            if len(values) != len(keys):
                raise ValueError("values must match the number of keys")
            for key, item_value in zip(keys, values):
                self.insert(key, int(item_value))

    def query_batch(self, keys: Sequence[object]) -> np.ndarray:
        """Estimated value sums of a batch of keys as an ``int64`` array.

        The default implementation loops over :meth:`query`; overrides
        vectorize but must return bit-identical estimates.
        """
        return np.fromiter(
            (self.query(key) for key in keys), dtype=np.int64, count=len(keys)
        )

    def insert_stream(self, items: Iterable, batch_size: int | None = None) -> None:
        """Insert every item of an iterable of ``(key, value)`` pairs.

        Items are buffered into chunks (``batch_size``, default
        :data:`DEFAULT_STREAM_BATCH`) and fed through :meth:`insert_batch` —
        the batch datapath of the sketch, when it has one — which is
        bit-identical to the scalar path for every sketch (the kernel-parity
        contract), so chunking is purely a throughput knob.  ``batch_size=0``
        forces the per-item scalar path, which timing harnesses use to
        measure it explicitly.
        """
        if batch_size is None:
            batch_size = DEFAULT_STREAM_BATCH
        if not batch_size:
            for key, value in items:
                self.insert(key, value)
            return
        # Imported here: repro.streams is a leaf package, but keeping the
        # import local avoids widening sketch import time for scalar users.
        from repro.streams.items import chunked

        for chunk in chunked(items, batch_size):
            self.insert_batch(
                [key for key, _ in chunk], [value for _, value in chunk]
            )

    def merge(self, other: "Sketch") -> "Sketch":
        """Fold another sketch's state into this one, in place.

        ``other`` must be a structurally identical peer: same class, same
        table geometry, same hash seeds (shards built by
        ``ShardedSketch.from_registry`` satisfy this by construction).  For
        mergeable sketches the merged instance answers queries as if it had
        ingested the concatenation of both operands' streams.  Returns
        ``self`` so merges chain.

        Sketches whose state depends on stream order or on replacement
        decisions (ReliableSketch, Elastic, SpaceSaving, ...) cannot merge
        losslessly and raise :class:`UnmergeableSketchError`.
        """
        raise UnmergeableSketchError(
            f"{type(self).__name__} ({self.name}) does not support lossless merging; "
            "only sketches with mergeable=True implement merge()"
        )

    def subtract(self, other: "Sketch") -> "Sketch":
        """Remove another sketch's contribution from this one, in place.

        The inverse of :meth:`merge`, under the same peer contract (same
        class, geometry and hash seeds).  When ``other`` summarises a
        *prefix* of the stream this sketch has absorbed, the result answers
        queries exactly as a sketch fed only the suffix — the sliding-window
        primitive of ``repro.temporal``: the difference of two epoch
        snapshots is the sketch of the items between them.  Exact only for
        sketches whose state is linear in the stream (``subtractable``);
        order-dependent and upper-bound families raise.  Returns ``self``
        so subtractions chain.
        """
        raise UnmergeableSketchError(
            f"{type(self).__name__} ({self.name}) does not support state subtraction; "
            "only sketches with subtractable=True implement subtract()"
        )

    def state_delta(self, earlier: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """The snapshot of this sketch's stream *minus* an earlier snapshot.

        ``earlier`` is a :meth:`state_snapshot` taken from a structurally
        identical peer at some prior point of the same stream; the returned
        dict restores (via :meth:`state_restore`) into a sketch that answers
        exactly as one fed only the items absorbed since.  The state-level
        form of :meth:`subtract`, for callers that hold snapshots rather
        than live sketches (the epoch ring's windowed reads).
        """
        raise UnmergeableSketchError(
            f"{type(self).__name__} ({self.name}) does not support state subtraction; "
            "only sketches with subtractable=True implement state_delta()"
        )

    def state_snapshot(self) -> dict[str, np.ndarray]:
        """Mutable table state as named arrays (mergeable sketches only).

        The snapshot is a *copy*: mutating the sketch afterwards does not
        change it.  Together with :meth:`state_restore` this is the transfer
        half of the merge contract — ``repro.distributed.wire`` serializes
        snapshots so remote workers can ship shard state to a collector —
        and the publication step of the serving layer's epoch rotation
        (``repro.serve.snapshots``).
        """
        raise UnmergeableSketchError(
            f"{type(self).__name__} ({self.name}) does not support state snapshots; "
            "only sketches with snapshotable=True implement state_snapshot()"
        )

    def state_restore(self, state: dict[str, np.ndarray]) -> None:
        """Overwrite this sketch's table state from a snapshot, in place.

        The receiving sketch must be a structurally identical peer of the
        snapshot's donor (same class, geometry and hash seeds — e.g. built
        from the registry with the donor's configuration); after restoring,
        every query answers exactly as the donor would.  Array shapes are
        validated; geometry/seed equality is the caller's contract, exactly
        as for :meth:`merge`.
        """
        raise UnmergeableSketchError(
            f"{type(self).__name__} ({self.name}) does not support state snapshots; "
            "only sketches with snapshotable=True implement state_restore()"
        )

    def _check_snapshot_shape(self, state: dict[str, np.ndarray], key: str,
                              shape: tuple[int, ...]) -> np.ndarray:
        """Shared restore validation: ``key`` present with the expected shape."""
        try:
            array = state[key]
        except KeyError:
            raise ValueError(f"snapshot is missing the {key!r} array") from None
        array = np.asarray(array)
        if array.shape != shape:
            raise ValueError(
                f"cannot restore {self.name} snapshot: {key!r} has shape "
                f"{array.shape}, expected {shape}"
            )
        return array

    def _check_merge_peer(self, other: "Sketch", attributes: Sequence[str]) -> None:
        """Shared merge validation: same class and identical named attributes.

        ``attributes`` name the structural parameters that must match for
        element-wise table addition to be meaningful (geometry and hash
        seeds); a mismatch raises ``ValueError`` before any state changes.
        """
        if type(other) is not type(self):
            raise ValueError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        for attribute in attributes:
            mine, theirs = getattr(self, attribute), getattr(other, attribute)
            if mine != theirs:
                raise ValueError(
                    f"cannot merge {self.name} sketches with mismatched "
                    f"{attribute}: {mine!r} != {theirs!r}"
                )

    def memory_bytes(self) -> float:
        """Configured memory footprint of the data structure, in bytes."""
        raise NotImplementedError

    def hash_calls(self) -> int:
        """Total number of hash-function evaluations so far (Figure 16)."""
        return 0

    def reset_hash_calls(self) -> None:
        """Zero the hash-call counters before a measurement phase."""

    def describe(self) -> SketchDescription:
        """Summarise this instance for experiment reports."""
        return SketchDescription(self.name, self.memory_bytes(), self.parameters())

    def parameters(self) -> dict:
        """Algorithm-specific parameters worth recording in reports."""
        return {}

    @staticmethod
    def _check_insert(value: int) -> None:
        """Shared validation: the stream-summary problem assumes positive values."""
        if value <= 0:
            raise ValueError("inserted value must be positive")

    @staticmethod
    def _batch_values(values: Sequence[int] | int | None, count: int) -> np.ndarray:
        """Normalise and validate batch values to a positive ``int64`` array.

        Shared by the vectorized ``insert_batch`` overrides; validation
        happens up front for the whole batch (the scalar loop validates item
        by item, so an invalid value mid-batch aborts earlier here — the
        accepted inputs are identical).
        """
        if values is None:
            value_array = np.ones(count, dtype=np.int64)
        elif isinstance(values, int):
            value_array = np.full(count, values, dtype=np.int64)
        else:
            value_array = np.asarray(values, dtype=np.int64)
        if value_array.shape != (count,):
            raise ValueError("values must match the number of keys")
        if value_array.size and int(value_array.min()) <= 0:
            raise ValueError("inserted value must be positive")
        return value_array

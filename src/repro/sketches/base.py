"""Common interface shared by every sketch in the repository.

The experiment harness treats all algorithms uniformly: construct from a
memory budget, feed a stream through ``insert``, then compare ``query``
against the ground truth.  Keeping the interface minimal (two methods plus
introspection helpers) mirrors the abstract "stream summary" problem of §2.1.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class SketchDescription:
    """Static description of a sketch instance for reports and tables."""

    name: str
    memory_bytes: float
    parameters: dict


class Sketch(abc.ABC):
    """Abstract base class of all stream-summary sketches."""

    #: Human-readable algorithm name, overridden by subclasses.
    name: str = "sketch"

    @abc.abstractmethod
    def insert(self, key: object, value: int = 1) -> None:
        """Process one stream item ``<key, value>`` (value must be positive)."""

    @abc.abstractmethod
    def query(self, key: object) -> int:
        """Return the estimated value sum of ``key``."""

    def insert_stream(self, items: Iterable) -> None:
        """Insert every item of an iterable of ``(key, value)`` pairs."""
        for key, value in items:
            self.insert(key, value)

    def memory_bytes(self) -> float:
        """Configured memory footprint of the data structure, in bytes."""
        raise NotImplementedError

    def hash_calls(self) -> int:
        """Total number of hash-function evaluations so far (Figure 16)."""
        return 0

    def reset_hash_calls(self) -> None:
        """Zero the hash-call counters before a measurement phase."""

    def describe(self) -> SketchDescription:
        """Summarise this instance for experiment reports."""
        return SketchDescription(self.name, self.memory_bytes(), self.parameters())

    def parameters(self) -> dict:
        """Algorithm-specific parameters worth recording in reports."""
        return {}

    @staticmethod
    def _check_insert(value: int) -> None:
        """Shared validation: the stream-summary problem assumes positive values."""
        if value <= 0:
            raise ValueError("inserted value must be positive")

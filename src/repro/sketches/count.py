"""Count sketch (Charikar, Chen & Farach-Colton 2002).

The L2-norm counter-based family representative (Table 1).  Each array adds
the value multiplied by a ±1 sign hash; the query reports the median of the
signed estimates, which is unbiased (unlike CM/CU, which only overestimate).
Not part of the paper's main competitor set but included because Table 1
contrasts the L1- and L2-norm families.
"""

from __future__ import annotations

import statistics
from typing import Sequence

import numpy as np

from repro.hashing import EncodedKeyBatch, HashFamily
from repro.metrics.memory import COUNTER_32
from repro.sketches.base import Sketch


class CountSketch(Sketch):
    """Count sketch sized from a memory budget.

    Counters live in a ``(depth, width)`` NumPy ``int64`` matrix.  Signed
    updates commute, so ``insert_batch`` is a pure array program (vectorized
    index and sign hashes plus ``np.add.at``) and stays bit-identical to the
    scalar loop for any chunking; ``query_batch`` takes the same per-row
    signed readings and the same median as the scalar query.
    """

    name = "Count"
    #: Signed updates sum, so merging is element-wise table addition and
    #: exactly equals one sketch fed both streams.
    mergeable = True
    #: The counter matrix is the whole mutable state (snapshot contract).
    snapshotable = True
    #: Signed updates are linear in the stream, so subtraction is the exact
    #: inverse of merging: a later table minus an earlier table of the same
    #: stream is bit-identical to a sketch fed only the items in between.
    subtractable = True

    def __init__(self, memory_bytes: float, depth: int = 3, seed: int = 0) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        total_counters = COUNTER_32.entries_for(memory_bytes)
        self.depth = depth
        self.width = max(1, total_counters // depth)
        self._family = HashFamily(seed)
        self._hashes = self._family.draw_many(depth, self.width)
        self._signs = [self._family.draw_sign() for _ in range(depth)]
        self._tables = np.zeros((depth, self.width), dtype=np.int64)

    def insert(self, key: object, value: int = 1) -> None:
        self._check_insert(value)
        for row, hash_fn, sign_fn in zip(self._tables, self._hashes, self._signs):
            row[hash_fn(key)] += sign_fn(key) * value

    def query(self, key: object) -> int:
        estimates = [
            int(sign_fn(key) * row[hash_fn(key)])
            for row, hash_fn, sign_fn in zip(self._tables, self._hashes, self._signs)
        ]
        # Estimates can be negative for rare keys; clamp to zero because the
        # stream-summary problem only has non-negative value sums.
        return max(0, int(statistics.median(estimates)))

    def insert_batch(self, keys: Sequence[object], values: Sequence[int] | int | None = None) -> None:
        batch = EncodedKeyBatch(keys)
        value_array = self._batch_values(values, len(batch))
        for row, hash_fn, sign_fn in zip(self._tables, self._hashes, self._signs):
            np.add.at(row, hash_fn.index_batch(batch), sign_fn.sign_batch(batch) * value_array)

    def query_batch(self, keys: Sequence[object]) -> np.ndarray:
        batch = EncodedKeyBatch(keys)
        estimates = np.stack(
            [
                sign_fn.sign_batch(batch) * row[hash_fn.index_batch(batch)]
                for row, hash_fn, sign_fn in zip(self._tables, self._hashes, self._signs)
            ]
        )
        # Median in integer arithmetic where possible: np.median would go
        # through float64 and lose exactness above 2^53.  Odd depth takes the
        # middle element exactly; even depth averages the middle pair through
        # one float division, which is precisely what statistics.median does
        # (and int()/astype both truncate towards zero).
        estimates.sort(axis=0)
        middle = self.depth // 2
        if self.depth % 2:
            medians = estimates[middle]
        else:
            medians = ((estimates[middle - 1] + estimates[middle]) / 2).astype(np.int64)
        return np.maximum(medians, np.int64(0))

    @property
    def _hash_seeds(self) -> tuple[int, ...]:
        return tuple(hash_fn.seed for hash_fn in self._hashes) + tuple(
            sign_fn.seed for sign_fn in self._signs
        )

    def merge(self, other: "CountSketch") -> "CountSketch":
        """Element-wise table addition; exact for any split of the stream."""
        self._check_merge_peer(other, ("depth", "width", "_hash_seeds"))
        self._tables += other._tables
        return self

    def subtract(self, other: "CountSketch") -> "CountSketch":
        """Element-wise table subtraction; exact inverse of :meth:`merge`."""
        self._check_merge_peer(other, ("depth", "width", "_hash_seeds"))
        self._tables -= other._tables
        return self

    def state_delta(self, earlier: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Current tables minus an earlier snapshot of the same stream."""
        tables = self._check_snapshot_shape(earlier, "tables", self._tables.shape)
        return {"tables": self._tables - tables.astype(np.int64)}

    def state_snapshot(self) -> dict[str, np.ndarray]:
        """The signed counter matrix — the whole mutable state of the sketch."""
        return {"tables": self._tables.copy()}

    def state_restore(self, state: dict[str, np.ndarray]) -> None:
        tables = self._check_snapshot_shape(state, "tables", self._tables.shape)
        self._tables = tables.astype(np.int64, copy=True)

    def memory_bytes(self) -> float:
        return COUNTER_32.bytes_for(self.depth * self.width)

    def hash_calls(self) -> int:
        return self._family.total_calls()

    def reset_hash_calls(self) -> None:
        self._family.reset_counters()

    def parameters(self) -> dict:
        return {"depth": self.depth, "width": self.width}

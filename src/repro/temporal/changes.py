"""Heavy-hitter change detection between two epochs.

Compares two heavy-hitter rankings — "the same question asked at two
points in time" — and reports what moved: keys whose estimates surged or
dropped by at least ``min_delta``, keys that entered or left the ranking,
and the membership churn fraction.  This is the software analogue of a
switch-telemetry control plane polling prefix counters on an interval and
alerting on deviations.

:func:`diff_rankings` is deliberately pure (two ``(key, estimate)`` lists
in, one :class:`ChangeReport` out) so the same diff runs in three places:

* server-side between any two ring epochs (``SketchService.diff_epochs``,
  which feeds it *exact* per-key estimates for the union of both top-k
  sets, so deltas are sketch-exact);
* per-publish alert callbacks (``SketchService.add_change_listener``);
* client-side in ``repro-cli query --watch``, over successive remote
  top-k answers (there a key absent from one ranking has an unknown
  estimate, treated as 0 — a lower bound on its true delta).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class KeyChange:
    """One key's estimate at the two compared epochs."""

    key: object
    before: int
    after: int

    @property
    def delta(self) -> int:
        return self.after - self.before

    def to_dict(self) -> dict:
        return {
            "key": self.key if isinstance(self.key, (int, str)) else repr(self.key),
            "before": self.before,
            "after": self.after,
            "delta": self.delta,
        }


@dataclass(frozen=True)
class ChangeReport:
    """What changed between two epochs' heavy-hitter rankings.

    ``surges`` (largest positive delta first) and ``drops`` (most negative
    first) hold every compared key whose estimate moved by at least the
    diff's ``min_delta``.  ``new_keys`` / ``vanished_keys`` track ranking
    *membership*: keys that entered or left the top-k between the epochs,
    in ranking order.  ``churn`` is ``1 - |before ∩ after| / k`` — the
    fraction of the ranking that turned over (0 = identical membership,
    1 = disjoint).
    """

    earlier_epoch: int
    later_epoch: int
    surges: tuple[KeyChange, ...]
    drops: tuple[KeyChange, ...]
    new_keys: tuple[object, ...]
    vanished_keys: tuple[object, ...]
    churn: float

    @property
    def has_changes(self) -> bool:
        return bool(self.surges or self.drops or self.new_keys or self.vanished_keys)

    def to_dict(self) -> dict:
        """JSON-serializable form (the ``--watch`` output schema)."""
        encode = lambda key: key if isinstance(key, (int, str)) else repr(key)  # noqa: E731
        return {
            "earlier_epoch": self.earlier_epoch,
            "later_epoch": self.later_epoch,
            "surges": [change.to_dict() for change in self.surges],
            "drops": [change.to_dict() for change in self.drops],
            "new_keys": [encode(key) for key in self.new_keys],
            "vanished_keys": [encode(key) for key in self.vanished_keys],
            "churn": self.churn,
        }


def diff_rankings(
    before: Sequence[tuple[object, int]],
    after: Sequence[tuple[object, int]],
    earlier_epoch: int = -1,
    later_epoch: int = -1,
    min_delta: int = 1,
    before_estimates: dict | None = None,
    after_estimates: dict | None = None,
) -> ChangeReport:
    """Diff two heavy-hitter rankings (heaviest first) into a change report.

    Ranking *membership* (``new_keys``/``vanished_keys``/``churn``) always
    comes from the two lists.  For deltas, a key present in only one
    ranking takes its estimate on the other side from the optional
    ``before_estimates``/``after_estimates`` mappings — the service-side
    path fills them by querying both epoch sketches for the union, making
    every delta sketch-exact — and falls back to 0 when unavailable (the
    remote ``--watch`` path, where the delta is then a lower bound).
    """
    if min_delta < 1:
        raise ValueError("min_delta must be at least 1")
    before_map = {key: int(estimate) for key, estimate in before}
    after_map = {key: int(estimate) for key, estimate in after}
    before_fallback = before_estimates or {}
    after_fallback = after_estimates or {}
    # Union in after-rank order, then before-only keys in before-rank order:
    # deterministic input order keeps the sorted outputs deterministic too
    # (sorts below are stable).
    union = list(after_map) + [key for key in before_map if key not in after_map]
    changes = [
        KeyChange(
            key,
            before_map.get(key, int(before_fallback.get(key, 0))),
            after_map.get(key, int(after_fallback.get(key, 0))),
        )
        for key in union
    ]
    surges = tuple(
        sorted(
            (change for change in changes if change.delta >= min_delta),
            key=lambda change: -change.delta,
        )
    )
    drops = tuple(
        sorted(
            (change for change in changes if change.delta <= -min_delta),
            key=lambda change: change.delta,
        )
    )
    new_keys = tuple(key for key in after_map if key not in before_map)
    vanished_keys = tuple(key for key in before_map if key not in after_map)
    overlap = len(before_map.keys() & after_map.keys())
    denominator = max(len(before_map), len(after_map))
    churn = 1.0 - overlap / denominator if denominator else 0.0
    return ChangeReport(
        earlier_epoch=earlier_epoch,
        later_epoch=later_epoch,
        surges=surges,
        drops=drops,
        new_keys=new_keys,
        vanished_keys=vanished_keys,
        churn=churn,
    )

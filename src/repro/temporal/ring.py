"""A bounded ring of recent published epoch snapshots.

The write side of the temporal layer: the service's publish hook offers
every new :class:`~repro.serve.snapshots.EpochSnapshot` to the ring, which
retains the most recent ones under two budgets — a count bound
(``max_epochs``) and an optional byte bound (``max_bytes``, summing each
replica's ``memory_bytes()``).  When either budget overflows, the *oldest*
epochs are evicted until the ring fits again; the newest epoch is never
evicted, so the latest publish is always pinnable.

Eviction is just dropping the ring's reference.  Snapshots are immutable by
contract, so a reader that resolved an epoch before it was evicted keeps a
fully consistent replica for as long as it holds the reference — the ring
bounds *retention*, not reader lifetime.

The ring is thread-safe: offers arrive from the single writer (inside the
epoch writer's lock) while resolves come from any reader thread.  A resolve
of an epoch the ring does not hold raises the typed
:class:`~repro.serve.errors.EpochGoneError` — the service maps it to
``STATUS_EPOCH_GONE`` on the wire.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.serve.snapshots import EpochSnapshot

#: Default count budget: enough history for short windows and diffs without
#: holding more than a handful of full sketch replicas alive.
DEFAULT_RING_EPOCHS = 8


class EpochRing:
    """Count- and byte-budgeted retention of recent epoch snapshots.

    Parameters
    ----------
    max_epochs:
        Retain at most this many epochs (>= 1).
    max_bytes:
        Optional cap on the summed ``memory_bytes()`` of the retained
        replicas.  The newest epoch is exempt (it is never evicted), so a
        single oversized replica degrades the ring to depth 1 instead of
        emptying it.
    """

    def __init__(
        self, max_epochs: int = DEFAULT_RING_EPOCHS, max_bytes: float | None = None
    ) -> None:
        if max_epochs < 1:
            raise ValueError("max_epochs must be at least 1")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self.max_epochs = max_epochs
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._epochs: "OrderedDict[int, EpochSnapshot]" = OrderedDict()
        self._bytes = 0.0
        #: Epochs dropped to keep the ring within its budgets.
        self.evictions = 0

    # ---------------------------------------------------------------- writes
    def offer(self, epoch: "EpochSnapshot") -> None:
        """Retain one published epoch, evicting the oldest past the budgets.

        Epoch ids must be offered in strictly increasing order (the publish
        sequence guarantees it); a stale or duplicate id is rejected so the
        ring's ordering invariant — iteration is publication order — holds.
        """
        with self._lock:
            if self._epochs:
                newest = next(reversed(self._epochs))
                if epoch.epoch_id <= newest:
                    raise ValueError(
                        f"epoch {epoch.epoch_id} offered out of order "
                        f"(ring newest is {newest})"
                    )
            self._epochs[epoch.epoch_id] = epoch
            self._bytes += float(epoch.sketch.memory_bytes())
            while len(self._epochs) > self.max_epochs or (
                self.max_bytes is not None
                and self._bytes > self.max_bytes
                and len(self._epochs) > 1
            ):
                _, evicted = self._epochs.popitem(last=False)
                self._bytes -= float(evicted.sketch.memory_bytes())
                self.evictions += 1

    # ----------------------------------------------------------------- reads
    def get(self, epoch_id: int) -> "EpochSnapshot":
        """The retained snapshot of ``epoch_id``.

        Raises :class:`~repro.serve.errors.EpochGoneError` when the ring
        does not hold it — evicted, never published, or not yet published.
        """
        with self._lock:
            snapshot = self._epochs.get(epoch_id)
            if snapshot is not None:
                return snapshot
            oldest = next(iter(self._epochs)) if self._epochs else None
            newest = next(reversed(self._epochs)) if self._epochs else None
        # Imported here, not at module scope: the service imports this
        # package at module level, so a top-level import of repro.serve
        # would be circular.
        from repro.serve.errors import EpochGoneError

        raise EpochGoneError(epoch_id, oldest=oldest, newest=newest)

    def __contains__(self, epoch_id: int) -> bool:
        with self._lock:
            return epoch_id in self._epochs

    def __len__(self) -> int:
        with self._lock:
            return len(self._epochs)

    @property
    def epochs(self) -> tuple[int, ...]:
        """Resident epoch ids, oldest first."""
        with self._lock:
            return tuple(self._epochs)

    @property
    def newest(self) -> "EpochSnapshot | None":
        """The most recently offered snapshot (never evicted while resident)."""
        with self._lock:
            if not self._epochs:
                return None
            return next(reversed(self._epochs.values()))

    @property
    def retained_bytes(self) -> float:
        """Summed ``memory_bytes()`` of the resident replicas."""
        with self._lock:
            return self._bytes

    def stats(self) -> dict:
        """Ring counters (JSON-serializable; nested under service stats)."""
        with self._lock:
            epochs = tuple(self._epochs)
            return {
                "resident_epochs": list(epochs),
                "oldest_epoch": epochs[0] if epochs else None,
                "newest_epoch": epochs[-1] if epochs else None,
                "max_epochs": self.max_epochs,
                "max_bytes": self.max_bytes,
                "retained_bytes": self._bytes,
                "evictions": self.evictions,
            }

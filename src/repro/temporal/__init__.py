"""Temporal analytics over the serving layer's epoch stream.

The serving layer publishes immutable epoch snapshots and forgets them: an
epoch dies the moment its last reader drops it, so nothing can answer "what
did this flow look like five epochs ago" or "which keys surged in the last
window" — exactly the monitoring questions switch-telemetry deployments
(HashPipe/PRECISION-style control planes polling sketch state on an
interval) exist to ask.  This package is that read-side layer:

* :class:`EpochRing` (``ring``) — a bounded ring of recent published
  epochs (count- and byte-budgeted) fed from the epoch writer's publish
  hook.  Eviction just drops the ring's reference: snapshots are immutable,
  so a reader that already pinned one keeps a fully consistent epoch no
  matter what the ring does afterwards.
* **Time-travel reads** — ``SketchService.query(..., epoch=E)`` resolves
  ``E`` against the ring and answers bit-identically to the moment ``E``
  was published; an evicted epoch raises the typed
  :class:`~repro.serve.errors.EpochGoneError` (``STATUS_EPOCH_GONE`` on
  the wire), which is *not retryable* — eviction is permanent.
* **Sliding windows** (``windows``) — for sketches whose state is linear
  in the stream (CM/Count, ``subtractable = True``), the difference of two
  ring epochs is *exactly* the sketch of the items between them:
  :func:`delta_sketch` subtracts the delimiting snapshots, giving
  last-``N``-epochs estimates with the same error bounds as a fresh sketch
  fed only the window.
* **Change detection** (``changes``) — :func:`diff_rankings` /
  ``SketchService.diff_epochs`` compare heavy-hitter rankings between any
  two ring epochs: surges, drops, keys entering/leaving the top-k, and a
  churn fraction; ``SketchService.add_change_listener`` turns the same
  diff into per-publish alert callbacks, and ``repro-cli query --watch``
  into an interval poller.
"""

from repro.temporal.changes import ChangeReport, KeyChange, diff_rankings
from repro.temporal.ring import DEFAULT_RING_EPOCHS, EpochRing
from repro.temporal.windows import delta_sketch

__all__ = [
    "DEFAULT_RING_EPOCHS",
    "EpochRing",
    "delta_sketch",
    "ChangeReport",
    "KeyChange",
    "diff_rankings",
]

"""Sliding-window estimates from epoch-snapshot deltas.

For sketches whose state is a *linear* function of the inserted multiset
(``subtractable = True`` — CM and Count, whose merge is element-wise table
addition), subtraction is the exact inverse of merging: the tables of a
later epoch minus the tables of an earlier epoch of the same stream are
bit-identical to a fresh sketch fed only the items between the two
publishes.  :func:`delta_sketch` materialises that difference, so a
last-``N``-epochs window query carries the same per-key error bounds as a
sketch that only ever saw the window — no rescaling, no approximation on
top of the approximation.

CU is deliberately excluded (its merge is an upper bound, so a difference
of CU tables has no windowed meaning): asking for a window on an
unsubtractable family raises
:class:`~repro.sketches.base.UnmergeableSketchError`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.sketches.base import Sketch, UnmergeableSketchError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.serve.snapshots import EpochSnapshot


def delta_sketch(
    later: "EpochSnapshot",
    earlier: "EpochSnapshot",
    factory: Callable[[], Sketch] | None = None,
) -> Sketch:
    """The sketch of the items published between two epochs.

    ``later`` and ``earlier`` must be snapshots of the *same* stream (the
    same writer), later-minus-earlier.  The result is a fresh replica —
    neither snapshot is mutated, so both stay valid for other pinned
    readers — and, for subtractable families, answers exactly as a sketch
    fed only the items ingested in ``(earlier, later]``.

    ``factory`` builds a structurally identical empty peer and enables the
    cheap snapshot-restore replication path (same contract as epoch
    publication).
    """
    if later.epoch_id <= earlier.epoch_id:
        raise ValueError(
            f"window must run forward: later epoch {later.epoch_id} "
            f"is not after earlier epoch {earlier.epoch_id}"
        )
    if not getattr(later.sketch, "subtractable", False):
        raise UnmergeableSketchError(
            f"{later.sketch.name} does not support windowed reads: its state "
            "is not linear in the stream, so epoch deltas are meaningless "
            "(subtractable sketches only)"
        )
    # Imported here, not at module scope: repro.serve.service imports this
    # package at module level, so a top-level import would be circular.
    from repro.serve.snapshots import replicate_sketch

    window = replicate_sketch(later.sketch, factory)
    window.subtract(earlier.sketch)
    return window

"""Setuptools shim.

This environment has no network access and no ``wheel`` package, so the
PEP 517 editable-install path (which needs ``bdist_wheel``) is unavailable.
Keeping a minimal ``setup.py`` lets ``pip install -e . --no-use-pep517
--no-build-isolation`` (and plain ``python setup.py develop``) work offline;
all real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

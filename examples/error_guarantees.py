#!/usr/bin/env python3
"""Error sensing and control: the two key techniques of the paper, visibly.

This example looks *inside* ReliableSketch on a surrogate IP trace:

* **Error sensing** — every query returns a Maximum Possible Error; the true
  value always lies in ``[estimate − MPE, estimate]`` (Figure 17).
* **Error control** — the number of keys that need deeper layers collapses
  double-exponentially, and no key's error exceeds Λ (Figure 19).
* **Emergency store** — with the overflow store enabled, the guarantee holds
  even when memory is far too small and insertions start failing.

Run with::

    python examples/error_guarantees.py

Set ``REPRO_EXAMPLE_SCALE`` to shrink the trace (the smoke test in
``tests/test_examples.py`` does).
"""

from __future__ import annotations

import os

from repro import ReliableSketch, ip_trace


def show_layer_decay(sketch: ReliableSketch, truth) -> None:
    """Print how many keys settle in each layer (the Figure 19a staircase)."""
    per_layer = [0] * sketch.depth
    for key in truth:
        per_layer[sketch.query_with_error(key).layers_visited - 1] += 1
    print("  keys settling per layer:", per_layer)


def main() -> None:
    stream = ip_trace(scale=float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.02")), seed=5)
    truth = stream.counts()
    tolerance = 25

    print("=== comfortable memory: the guarantee in its natural habitat ===")
    sketch = ReliableSketch.from_stream(stream.total_value(), tolerance, seed=2)
    sketch.insert_stream(stream)
    violations = sum(
        1 for key, count in truth.items() if not sketch.query_with_error(key).contains(count)
    )
    worst = max(abs(sketch.query(key) - count) for key, count in truth.items())
    sensed_worst = max(sketch.sensed_error(key) for key in truth)
    print(f"  memory: {sketch.memory_bytes() / 1024:.1f} KB, failures: {sketch.insert_failures}")
    print(f"  interval violations: {violations} / {len(truth)}")
    print(f"  worst actual error: {worst}, worst sensed error: {sensed_worst}, Λ = {tolerance}")
    show_layer_decay(sketch, truth)

    print("\n=== tiny memory + emergency store: failures become harmless ===")
    tiny = ReliableSketch.from_memory(
        6 * 1024, tolerance=tolerance, seed=2, use_emergency=True
    )
    tiny.insert_stream(stream)
    violations = sum(
        1 for key, count in truth.items() if not tiny.query_with_error(key).contains(count)
    )
    print(f"  memory: {tiny.memory_bytes() / 1024:.1f} KB, failures: {tiny.insert_failures}, "
          f"overflow keys: {tiny.emergency.stored_keys}")
    print(f"  interval violations: {violations} / {len(truth)}")

    print("\n=== tiny memory, no emergency: the failure mode the theory bounds ===")
    bare = ReliableSketch.from_memory(6 * 1024, tolerance=tolerance, seed=2)
    bare.insert_stream(stream)
    outliers = sum(
        1 for key, count in truth.items() if abs(bare.query(key) - count) > tolerance
    )
    print(f"  failures: {bare.insert_failures}, outliers: {outliers} "
          f"(every outlier stems from a failed insertion)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: build a ReliableSketch, feed it a stream, query with error bounds.

This is the smallest end-to-end use of the public API:

1. generate a skewed key-value stream,
2. size a ReliableSketch from the stream's total value and the error
   tolerance Λ you are willing to accept,
3. insert the stream,
4. query any key and receive both an estimate and a *guaranteed* error bound.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ReliableSketch, zipf_stream


def main() -> None:
    # A 200k-item Zipf stream over 20k keys: a few heavy hitters, many mice.
    stream = zipf_stream(count=200_000, skew=1.2, universe=20_000, seed=7)
    truth = stream.counts()

    tolerance = 25  # Λ: the largest per-key error we are willing to accept.
    sketch = ReliableSketch.from_stream(
        total_value=stream.total_value(), tolerance=tolerance, seed=1
    )
    sketch.insert_stream(stream)

    print(f"stream: {len(stream):,} items, {stream.distinct_keys():,} distinct keys")
    print(f"sketch: {sketch.memory_bytes() / 1024:.1f} KB, {sketch.depth} layers, "
          f"tolerance Λ = {tolerance}")
    print(f"insertion failures: {sketch.insert_failures}")
    print()

    # Query the five heaviest keys and five random mice keys.
    heavy = sorted(truth, key=truth.get, reverse=True)[:5]
    mice = sorted(truth, key=truth.get)[:5]
    print(f"{'key':>12} {'true':>8} {'estimate':>9} {'MPE':>5}  interval")
    for key in heavy + mice:
        result = sketch.query_with_error(key)
        contains = "ok" if result.contains(truth[key]) else "VIOLATION"
        print(
            f"{key!s:>12} {truth[key]:>8} {result.estimate:>9} {result.mpe:>5}  "
            f"[{result.lower_bound}, {result.upper_bound}] {contains}"
        )

    # The headline guarantee: every key's error is below Λ.
    worst = max(abs(sketch.query(key) - count) for key, count in truth.items())
    print()
    print(f"worst absolute error over all {len(truth):,} keys: {worst} (Λ = {tolerance})")


if __name__ == "__main__":
    main()

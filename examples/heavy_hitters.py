#!/usr/bin/env python3
"""Heavy-hitter detection: the networking workload that motivates the paper.

The introduction's motivating example: a measurement point must flag
"frequent" flows (value sum above a threshold T).  With a classical sketch a
small per-key error probability still yields thousands of false positives
because millions of infrequent flows are each tested.  ReliableSketch bounds
*every* key's error by Λ, so a simple report threshold of ``T`` with margin Λ
gives a clean separation.

The example compares the false-positive/false-negative behaviour of
ReliableSketch and Count-Min on a surrogate IP trace under equal memory.

Run with::

    python examples/heavy_hitters.py
"""

from __future__ import annotations

from repro import CountMinSketch, ReliableSketch, ip_trace


def classify(estimate_fn, keys, threshold: int) -> set:
    """Keys the sketch would report as frequent (estimate > threshold)."""
    return {key for key in keys if estimate_fn(key) > threshold}


def main() -> None:
    stream = ip_trace(scale=0.02, seed=11)
    truth = stream.counts()
    threshold = 100          # a flow is "frequent" if it has > 100 packets
    tolerance = 25           # Λ
    memory_bytes = 24 * 1024 # the same small budget for both algorithms

    actual_frequent = {key for key, count in truth.items() if count > threshold}
    print(f"stream: {len(stream):,} packets, {len(truth):,} flows, "
          f"{len(actual_frequent)} truly frequent (> {threshold} packets)")

    reliable = ReliableSketch.from_memory(memory_bytes, tolerance=tolerance, seed=3)
    reliable.insert_stream(stream)
    countmin = CountMinSketch(memory_bytes, depth=3, seed=3)
    countmin.insert_stream(stream)

    for name, sketch in (("ReliableSketch", reliable), ("Count-Min", countmin)):
        reported = classify(sketch.query, truth.keys(), threshold)
        false_positives = reported - actual_frequent
        false_negatives = actual_frequent - reported
        precision = len(reported & actual_frequent) / len(reported) if reported else 1.0
        recall = len(reported & actual_frequent) / len(actual_frequent)
        print(f"\n{name} ({memory_bytes // 1024} KB)")
        print(f"  reported frequent : {len(reported)}")
        print(f"  false positives   : {len(false_positives)}")
        print(f"  false negatives   : {len(false_negatives)}")
        print(f"  precision / recall: {precision:.3f} / {recall:.3f}")

    # With ReliableSketch the separation is provable: any key reported above
    # threshold + Λ is certainly frequent, and any truly frequent key is
    # certainly reported above threshold - Λ.
    certain = classify(reliable.query, truth.keys(), threshold + tolerance)
    wrongly_certain = certain - actual_frequent
    print(f"\nReliableSketch keys above T + Λ: {len(certain)} "
          f"(wrongly flagged: {len(wrongly_certain)})")


if __name__ == "__main__":
    main()

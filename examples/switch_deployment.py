#!/usr/bin/env python3
"""Programmable-switch deployment: resources and accuracy (paper §5.2, §6.5.3).

Reproduces, at reduced scale, the two switch-related results:

* Table 4 — the resource usage of ReliableSketch on a Tofino pipeline.
* Figure 20 — accuracy of the constrained data-plane algorithm versus SRAM
  budget on the surrogate IP trace and Hadoop traces.

Run with::

    python examples/switch_deployment.py
"""

from __future__ import annotations

from repro.experiments.deployment import testbed_accuracy
from repro.experiments.tables import format_table, tofino_table_rows
from repro.hardware.fpga import FpgaModel
from repro.core.config import ReliableConfig


def main() -> None:
    print("=== Table 4: Tofino resource usage (6 bucket layers) ===")
    print(format_table(["Resource", "Usage", "Percentage"], tofino_table_rows(layers=6)))

    print("\n=== Table 3: FPGA synthesis model (1 MB configuration) ===")
    config = ReliableConfig.from_memory(1024 * 1024, tolerance=25.0)
    report = FpgaModel().synthesize(config)
    rows = [
        [m.module, m.clb_luts, m.clb_registers, m.block_ram, m.frequency_mhz]
        for m in report.modules
    ]
    print(format_table(["Module", "LUTs", "Registers", "BRAM", "MHz"], rows))
    print(f"pipeline throughput: {report.throughput_mops:.0f} M insertions/s "
          f"({report.insert_latency_cycles} cycles latency)")

    print("\n=== Figure 20: data-plane accuracy vs SRAM ===")
    for trace in ("ip", "hadoop"):
        curve = testbed_accuracy(trace_name=trace, scale=0.002, seed=1)
        print(f"\n[{trace} trace]")
        rows = [
            [f"{r.sram_bytes / 1024:.1f} KB", r.outliers, f"{r.aae_kbps:.1f}", r.recirculations]
            for r in curve.results
        ]
        print(format_table(["SRAM", "#Outliers", "AAE (Kbps)", "Recirculations"], rows))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Programmable-switch deployment: resources, accuracy, distributed collection.

Reproduces, at reduced scale, the switch-related results and the deployment
shape they imply:

* Table 4 — the resource usage of ReliableSketch on a Tofino pipeline.
* Figure 20 — accuracy of the constrained data-plane algorithm versus SRAM
  budget on the surrogate IP trace and Hadoop traces.
* Distributed collection — several measurement points each ingest their key
  partition into a shard-local sketch; a collector tree-merges the shipped
  sketch states into one summary, bit-identical to a single box seeing the
  whole stream (``repro.distributed``, see ``docs/architecture.md`` §4).

Run with::

    python examples/switch_deployment.py
"""

from __future__ import annotations

from repro.distributed import run_distributed_ingest
from repro.experiments.deployment import testbed_accuracy
from repro.experiments.tables import format_table, tofino_table_rows
from repro.hardware.fpga import FpgaModel
from repro.core.config import ReliableConfig
from repro.sketches.registry import build_sketch
from repro.streams.traces import ip_trace


def main() -> None:
    print("=== Table 4: Tofino resource usage (6 bucket layers) ===")
    print(format_table(["Resource", "Usage", "Percentage"], tofino_table_rows(layers=6)))

    print("\n=== Table 3: FPGA synthesis model (1 MB configuration) ===")
    config = ReliableConfig.from_memory(1024 * 1024, tolerance=25.0)
    report = FpgaModel().synthesize(config)
    rows = [
        [m.module, m.clb_luts, m.clb_registers, m.block_ram, m.frequency_mhz]
        for m in report.modules
    ]
    print(format_table(["Module", "LUTs", "Registers", "BRAM", "MHz"], rows))
    print(f"pipeline throughput: {report.throughput_mops:.0f} M insertions/s "
          f"({report.insert_latency_cycles} cycles latency)")

    print("\n=== Figure 20: data-plane accuracy vs SRAM ===")
    for trace in ("ip", "hadoop"):
        curve = testbed_accuracy(trace_name=trace, scale=0.002, seed=1)
        print(f"\n[{trace} trace]")
        rows = [
            [f"{r.sram_bytes / 1024:.1f} KB", r.outliers, f"{r.aae_kbps:.1f}", r.recirculations]
            for r in curve.results
        ]
        print(format_table(["SRAM", "#Outliers", "AAE (Kbps)", "Recirculations"], rows))

    print("\n=== Distributed collection: 4 measurement points, one collector ===")
    # The deployment behind the paper's multi-vantage measurement setting:
    # each ingest node owns the sketch for its hash partition of the keys,
    # ships its table state to the collector, and the tree merge equals one
    # sketch that saw the whole stream (exactly, for CM/Count).
    stream = ip_trace(scale=0.004, seed=7)
    memory_bytes = 32 * 1024
    result = run_distributed_ingest(
        "CM_fast", memory_bytes, stream, workers=4, transport="inproc", seed=7
    )
    single = build_sketch("CM_fast", memory_bytes, seed=7)
    single.insert_stream(stream)
    keys = stream.keys()
    identical = bool(
        (result.merged.query_batch(keys) == single.query_batch(keys)).all()
    )
    print(f"stream: {len(stream):,} packets over 4 ingest nodes "
          f"{list(result.items_per_worker)}")
    print(f"wire: {result.bytes_sent:,} B of routed batches out, "
          f"{result.bytes_received:,} B of sketch state back")
    print(f"collector tree-merged 4 snapshots in {result.merge_seconds * 1e3:.2f} ms; "
          f"bit-identical to a single collector-side sketch: {identical}")


if __name__ == "__main__":
    main()

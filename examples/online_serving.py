"""Online serving walkthrough: query a sketch while it is still ingesting.

The measurement-sketch workload of the paper is interactive in practice —
an operator asks for per-flow estimates and heavy hitters *while* the
stream is being absorbed.  This example runs the whole serving stack in a
few lines:

1. launch a remote ReliableSketch service over the TCP transport (real
   sockets, one command-equivalent of ``repro-cli serve``);
2. stream writes to it while reading concurrently, observing epoch
   rotation and bounded staleness;
3. verify the serving contract: answers stamped with epoch E are
   bit-identical to a frozen copy of the sketch at E, and after a flush
   the service agrees with a local reference sketch fed the same stream.

Run it directly::

    PYTHONPATH=src python examples/online_serving.py
"""

from __future__ import annotations

import os

from repro.serve import LoadGenConfig, ServeConfig, ServingSession, run_loadgen
from repro.sketches.registry import build_sketch
from repro.streams.synthetic import zipf_stream

MEMORY_BYTES = 64 * 1024
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    config = ServeConfig("Ours", MEMORY_BYTES, seed=0, publish_every_items=4096)
    stream = zipf_stream(int(40_000 * SCALE) or 2000, skew=1.2, seed=11)
    reference = build_sketch("Ours", MEMORY_BYTES, seed=0)

    with ServingSession(config, transport="tcp") as session:
        client = session.client

        # --- writes and reads interleaved -------------------------------
        for chunk in stream.iter_batches(1024):
            client.ingest([item.key for item in chunk], [item.value for item in chunk])
            reference.insert_batch(
                [item.key for item in chunk], [item.value for item in chunk]
            )
        stats = client.stats()
        print(
            f"mid-stream: epoch {stats['epoch_id']}, "
            f"{stats['items_ingested']} items absorbed, "
            f"readers lag by {stats['staleness_items']} items"
        )

        # --- read-your-writes barrier, then the contract check ----------
        epoch = client.flush()
        keys = stream.keys()
        served, answered_at = client.query_batch(keys)
        identical = bool((served == reference.query_batch(keys)).all())
        print(
            f"flushed to epoch {epoch}; {len(keys)} keys served at epoch "
            f"{answered_at} bit-identical to the local reference: {identical}"
        )

        # --- heavy hitters straight from the service --------------------
        ranking, _ = client.top_k(5)
        print("top-5 flows:", ", ".join(f"{key}={estimate}" for key, estimate in ranking))

        # --- a small mixed read/write load, measured --------------------
        report = run_loadgen(
            client,
            LoadGenConfig(operations=max(200, int(1000 * SCALE)), read_ratio=0.5,
                          seed=3),
        )
        print(
            f"loadgen: {report.ops_per_second:,.0f} ops/s sustained, "
            f"read p50 {report.read_latency_p50_ms:.3f} ms / "
            f"p99 {report.read_latency_p99_ms:.3f} ms, "
            f"{report.epochs_published} epochs rotated, "
            f"epoch-consistent reads: {report.epoch_consistent}"
        )


if __name__ == "__main__":
    main()

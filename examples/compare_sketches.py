#!/usr/bin/env python3
"""Compare ReliableSketch against every baseline under equal memory.

A miniature version of the paper's §6.2/§6.3 evaluation: all algorithms get
the same memory budget on the same surrogate IP trace and are scored on
#Outliers, AAE, ARE and (relative, Python-level) throughput.

Run with::

    python examples/compare_sketches.py

Set ``REPRO_EXAMPLE_SCALE`` to shrink the trace (the smoke test in
``tests/test_examples.py`` does).
"""

from __future__ import annotations

import os
import time

from repro import build_sketch, evaluate_accuracy, ip_trace
from repro.experiments.tables import format_table

ALGORITHMS = (
    "Ours",
    "Ours(Raw)",
    "CM_fast",
    "CU_fast",
    "CM_acc",
    "CU_acc",
    "Elastic",
    "SS",
    "Coco",
    "HashPipe",
    "PRECISION",
)


def main() -> None:
    stream = ip_trace(scale=float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.02")), seed=9)
    truth = stream.counts()
    tolerance = 25
    memory_bytes = 24 * 1024

    rows = []
    for name in ALGORITHMS:
        sketch = build_sketch(name, memory_bytes, seed=4)
        started = time.perf_counter()
        sketch.insert_stream(stream)
        insert_seconds = time.perf_counter() - started
        report = evaluate_accuracy(truth, sketch.query, tolerance)
        rows.append(
            [
                name,
                report.outliers,
                f"{report.aae:.2f}",
                f"{report.are:.3f}",
                f"{len(stream) / insert_seconds / 1e6:.3f}",
            ]
        )

    print(f"stream: {len(stream):,} packets, {len(truth):,} flows; "
          f"memory: {memory_bytes // 1024} KB; Λ = {tolerance}\n")
    print(format_table(
        ["Algorithm", "#Outliers", "AAE", "ARE", "Insert Mops (Python)"], rows
    ))
    print("\nNote: throughput is a relative, pure-Python measurement; the paper's "
          "absolute Mpps figures come from C++/hardware implementations.")


if __name__ == "__main__":
    main()

"""Warm restart through the serving stack: bit-identical for every family.

The acceptance bar of the durable store: a ``SketchService`` restarted
from ``--store DIR`` must answer every query exactly as a process that
never died — for *every* snapshotable family, including the
order-dependent ones whose RNG draw counters ride in the state — under
the full crash matrix (clean stop, kill without flush, kill mid-append).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.server import ServeConfig
from repro.sketches.registry import snapshot_names
from repro.store import CrashInjectingFileSystem, CrashPlan, InjectedCrash, SketchStore

MEMORY = 4096
PUBLISH_EVERY = 128


def key_chunks(count=600, seed=5):
    rng = np.random.default_rng(seed)
    keys = [f"k{int(v) % 97}" for v in rng.integers(0, 1 << 30, size=count)]
    return [keys[i : i + 100] for i in range(0, count, 100)]


def config_for(name, directory=None):
    return ServeConfig(
        name,
        MEMORY,
        seed=2,
        publish_every_items=PUBLISH_EVERY,
        store_dir=None if directory is None else str(directory),
    )


def reference_service(name, chunks):
    service = config_for(name).build_service()
    for chunk in chunks:
        service.ingest(chunk)
    service.flush()
    return service


@pytest.mark.parametrize("name", snapshot_names())
def test_warm_restart_bit_identical_per_family(tmp_path, name):
    chunks = key_chunks()
    half = len(chunks) // 2

    durable = config_for(name, tmp_path).build_service()
    for chunk in chunks[:half]:
        durable.ingest(chunk)
    # Kill without flush: whatever the writer held in memory must be in the
    # journal — recovery may not lose a single item.
    durable.close()

    restarted = config_for(name, tmp_path).build_service()
    for chunk in chunks[half:]:
        restarted.ingest(chunk)
    restarted.flush()

    reference = reference_service(name, chunks)
    probe = sorted({key for chunk in chunks for key in chunk})
    got = restarted.query_batch(probe)
    want = reference.query_batch(probe)
    assert np.array_equal(got, want), f"{name} answers diverged after restart"
    assert (
        restarted.stats()["items_ingested"] == reference.stats()["items_ingested"]
    )
    restarted.close()


def test_restart_epochs_continue_not_restart(tmp_path):
    service = config_for("CM_fast", tmp_path).build_service()
    service.ingest([f"k{i}" for i in range(300)])
    service.flush()
    first_epoch = service.stats()["epoch_id"]
    service.close()

    restarted = config_for("CM_fast", tmp_path).build_service()
    assert restarted.stats()["epoch_id"] > first_epoch
    restarted.close()


def test_crash_mid_append_then_serve_restart(tmp_path):
    chunks = key_chunks()
    config = config_for("Ours", tmp_path)
    fs = CrashInjectingFileSystem(plan=CrashPlan(crash_at_write=11, write_prefix=6))
    store = SketchStore(str(tmp_path), algorithm="Ours", fs=fs)
    from repro.serve.service import SketchService

    service = SketchService(
        config.build_sketch(), publish_every_items=PUBLISH_EVERY, store=store
    )
    survived = 0
    with pytest.raises(InjectedCrash):
        for chunk in chunks:
            service.ingest(chunk)
            survived += len(chunk)
    assert fs.crashed

    # A real restart over the torn directory: answers must match a clean
    # process fed exactly the batches whose journal frames survived.
    restarted = config.build_service()
    report_items = restarted.stats()["items_ingested"]
    reference = config_for("Ours").build_service()
    fed = 0
    for chunk in chunks:
        if fed + len(chunk) > report_items:
            break
        reference.ingest(chunk)
        fed += len(chunk)
    assert fed == report_items  # recovery stopped on a batch boundary
    reference.flush()
    restarted.flush()
    probe = sorted({key for chunk in chunks for key in chunk})
    got = restarted.query_batch(probe)
    want = reference.query_batch(probe)
    assert np.array_equal(got, want)
    restarted.close()


def test_degraded_store_keeps_serving(tmp_path):
    fs = CrashInjectingFileSystem(plan=CrashPlan(fail_writes=frozenset({2})))
    store = SketchStore(str(tmp_path), algorithm="CM_fast", fs=fs)
    from repro.serve.service import SketchService

    config = config_for("CM_fast")
    service = SketchService(
        config.build_sketch(), publish_every_items=PUBLISH_EVERY, store=store
    )
    for chunk in key_chunks():
        service.ingest(chunk)  # the disk error must never surface here
    service.flush()
    stats = service.stats()
    assert stats["store"]["degraded"]
    assert stats["store"]["dropped_batches"] > 0
    estimates = service.query_batch(["k1", "k2"])
    assert (estimates >= 0).all()
    service.close()


def test_non_snapshotable_algorithm_rejected_for_store(tmp_path):
    config = ServeConfig("Elastic", MEMORY, store_dir=str(tmp_path))
    with pytest.raises(ValueError, match="snapshotable"):
        config.build_service()


def test_store_dir_round_trips_through_payload(tmp_path):
    config = config_for("CM_fast", tmp_path)
    assert ServeConfig.from_payload(config.to_payload()) == config

"""Durable partition checkpoints: coordinator crash -> resume from disk.

The dynamic ingest coordinator's recovery story (PR 8) required a
surviving *process*.  With a :class:`PartitionStore` the checkpoints live
on disk, so these tests kill the whole fleet — coordinator included — and
prove a new one resumes bit-identically: half the stream before the
"crash", half after, final partitions equal to an uninterrupted run's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.ingest import DynamicIngestCoordinator, run_dynamic_ingest
from repro.distributed.transport import create_transport
from repro.store import PartitionStore, StoreCorruptionError, StoreError
from repro.store.partitions import partition_filename
from repro.streams.items import chunked

MEMORY = 8192
SEED = 3
PARTITIONS = 4


def stream_items(count=4000, seed=11):
    rng = np.random.default_rng(seed)
    return [(f"k{int(v) % 400}", 1) for v in rng.integers(0, 1 << 30, size=count)]


def drive(coordinator, items, chunk=512):
    for piece in chunked(items, chunk):
        coordinator.send_batch([k for k, _ in piece], [v for _, v in piece])


def states_equal(a, b):
    return set(a) == set(b) and all(
        np.array_equal(np.asarray(a[k]), np.asarray(b[k])) for k in a
    )


# ---------------------------------------------------------------- unit level
def test_save_load_round_trip(tmp_path):
    store = PartitionStore(str(tmp_path), algorithm="CM_fast")
    state = {"table": np.arange(12, dtype=np.int64).reshape(3, 4)}
    store.save(2, state, {"items": 7, "epoch": 1}, "CM_fast")
    loaded = PartitionStore(str(tmp_path), algorithm="CM_fast").load_all()
    assert list(loaded) == [2]
    restored, meta = loaded[2]
    assert np.array_equal(restored["table"], state["table"])
    assert meta["items"] == 7 and meta["partition"] == 2
    assert store.saves == 1


def test_latest_save_wins(tmp_path):
    store = PartitionStore(str(tmp_path))
    store.save(0, {"t": np.zeros(4, dtype=np.int64)}, {"items": 1}, "CM_fast")
    store.save(0, {"t": np.ones(4, dtype=np.int64)}, {"items": 9}, "CM_fast")
    _, meta = store.load_all()[0]
    assert meta["items"] == 9


def test_corrupt_checkpoint_refuses_partial_resume(tmp_path):
    store = PartitionStore(str(tmp_path))
    store.save(0, {"t": np.zeros(4, dtype=np.int64)}, {"items": 1}, "CM_fast")
    store.save(1, {"t": np.ones(4, dtype=np.int64)}, {"items": 2}, "CM_fast")
    path = tmp_path / partition_filename(1)
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0x10
    path.write_bytes(bytes(blob))
    with pytest.raises(StoreCorruptionError):
        PartitionStore(str(tmp_path)).load_all()
    # The damaged file is preserved in quarantine, never silently dropped.
    held = [p.name for p in (tmp_path / "quarantine").iterdir()]
    assert any(partition_filename(1) in name for name in held)


def test_family_pin_enforced(tmp_path):
    store = PartitionStore(str(tmp_path), algorithm="CM_fast")
    store.save(0, {"t": np.zeros(4, dtype=np.int64)}, {"items": 1}, "CM_fast")
    with pytest.raises(StoreError, match="holds 'CM_fast'"):
        PartitionStore(str(tmp_path), algorithm="Count").load_all()


# ---------------------------------------------------------- coordinator level
@pytest.mark.parametrize("algorithm", ["CM_fast", "Ours"])
def test_coordinator_resume_bit_identical(tmp_path, algorithm):
    items = stream_items()
    half = len(items) // 2

    reference = run_dynamic_ingest(
        algorithm, MEMORY, items, workers=2, partitions=PARTITIONS, seed=SEED
    )

    first = DynamicIngestCoordinator(
        algorithm, MEMORY, 2, create_transport("inproc"),
        partitions=PARTITIONS, seed=SEED,
        store=PartitionStore(str(tmp_path), algorithm=algorithm),
    )
    drive(first, items[:half])
    first.collect()  # checkpoint every partition to disk
    first.shutdown()  # the whole fleet dies — nothing survives in memory

    second = DynamicIngestCoordinator(
        algorithm, MEMORY, 2, create_transport("inproc"),
        partitions=PARTITIONS, seed=SEED,
        store=PartitionStore(str(tmp_path), algorithm=algorithm),
    )
    assert second.resumed_partitions == tuple(range(PARTITIONS))
    drive(second, items[half:])
    sketches, metas = second.collect()
    second.shutdown()

    for partition, sketch in enumerate(sketches):
        assert states_equal(
            sketch.state_snapshot(),
            reference.partition_sketches[partition].state_snapshot(),
        ), f"partition {partition} diverged after resume"
    assert sum(int(meta["items"]) for meta in metas) == len(items)


def test_resume_survives_checkpoint_cadence_not_just_collect(tmp_path):
    """Resume from mid-stream journal_limit checkpoints (no final collect).

    The resumed fleet holds each partition's *last checkpoint* — batches
    after it died with the coordinator, and the resumed counters must
    account for exactly the checkpointed items, no more.
    """
    items = stream_items(count=3000)
    store = PartitionStore(str(tmp_path), algorithm="CM_fast")
    first = DynamicIngestCoordinator(
        "CM_fast", MEMORY, 2, create_transport("inproc"),
        partitions=PARTITIONS, seed=SEED, journal_limit=2, store=store,
    )
    drive(first, items, chunk=256)
    first.shutdown()  # crash without collect: disk holds cadence checkpoints
    assert store.saves > 0

    second = DynamicIngestCoordinator(
        "CM_fast", MEMORY, 2, create_transport("inproc"),
        partitions=PARTITIONS, seed=SEED,
        store=PartitionStore(str(tmp_path), algorithm="CM_fast"),
    )
    checkpointed = int(second.items_per_partition.sum())
    assert 0 < checkpointed <= len(items)
    sketches, metas = second.collect()  # accounting must balance exactly
    second.shutdown()
    assert sum(int(meta["items"]) for meta in metas) == checkpointed


def test_resume_then_reshard_keeps_identity(tmp_path):
    items = stream_items()
    half = len(items) // 2
    reference = run_dynamic_ingest(
        "CM_fast", MEMORY, items, workers=2, partitions=PARTITIONS, seed=SEED
    )

    first = DynamicIngestCoordinator(
        "CM_fast", MEMORY, 2, create_transport("inproc"),
        partitions=PARTITIONS, seed=SEED,
        store=PartitionStore(str(tmp_path), algorithm="CM_fast"),
    )
    drive(first, items[:half])
    first.collect()
    first.shutdown()

    second = DynamicIngestCoordinator(
        "CM_fast", MEMORY, 2, create_transport("inproc"),
        partitions=PARTITIONS, seed=SEED,
        store=PartitionStore(str(tmp_path), algorithm="CM_fast"),
    )
    new_worker = second.split_worker(0)  # reshard straight after resume
    drive(second, items[half:])
    sketches, _ = second.collect()
    second.shutdown()
    assert new_worker in range(2, 4)
    for partition, sketch in enumerate(sketches):
        assert states_equal(
            sketch.state_snapshot(),
            reference.partition_sketches[partition].state_snapshot(),
        )


def test_store_dir_threads_through_run_dynamic_ingest(tmp_path):
    items = stream_items(count=1500)
    result = run_dynamic_ingest(
        "CM_fast", MEMORY, items, workers=2, partitions=PARTITIONS, seed=SEED,
        store_dir=str(tmp_path),
    )
    assert result.total_items == len(items)
    persisted = PartitionStore(str(tmp_path), algorithm="CM_fast").load_all()
    assert sorted(persisted) == list(range(PARTITIONS))
    resumed = run_dynamic_ingest(
        "CM_fast", MEMORY, items, workers=2, partitions=PARTITIONS, seed=SEED,
        store_dir=str(tmp_path),
    )
    assert resumed.total_items == 2 * len(items)


def test_coordinator_disk_failure_does_not_kill_ingest(tmp_path):
    from repro.store import CrashInjectingFileSystem, CrashPlan

    fs = CrashInjectingFileSystem(
        plan=CrashPlan(fail_writes=frozenset(range(2, 100)))
    )
    store = PartitionStore(str(tmp_path), algorithm="CM_fast", fs=fs)
    items = stream_items(count=2000)
    coordinator = DynamicIngestCoordinator(
        "CM_fast", MEMORY, 2, create_transport("inproc"),
        partitions=PARTITIONS, seed=SEED, journal_limit=2, store=store,
    )
    drive(coordinator, items, chunk=256)
    sketches, metas = coordinator.collect()  # must not raise
    coordinator.shutdown()
    assert coordinator.store_errors > 0  # the failures were loud
    assert sum(int(meta["items"]) for meta in metas) == len(items)


def test_oversized_partition_checkpoint_rejected(tmp_path):
    store = PartitionStore(str(tmp_path), algorithm="CM_fast")
    store.save(7, {"t": np.zeros(4, dtype=np.int64)}, {"items": 1}, "CM_fast")
    with pytest.raises(ValueError, match="partition 7"):
        DynamicIngestCoordinator(
            "CM_fast", MEMORY, 2, create_transport("inproc"),
            partitions=4, seed=SEED,
            store=PartitionStore(str(tmp_path), algorithm="CM_fast"),
        )

"""Deterministic crash injection: the store's whole reason to exist.

Mirrors the philosophy of ``repro.distributed.fault``: crashes are
scheduled on *operation counters* (write #N, fsync #N, the rename itself),
so every schedule is repeatable, and every assertion runs against the
exact bytes a real power cut at that instant would leave.  The matrix from
the issue: kill-before-fsync, kill-mid-rename (both outcomes of an
interrupted rename), torn WAL tail, garbled frame, corrupt-newest-epoch
fallback — plus a byte-offset sweep proving *every* crash point during an
append recovers to a batch-boundary prefix of the true history.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketches.registry import build_sketch
from repro.store import (
    CrashInjectingFileSystem,
    CrashPlan,
    InjectedCrash,
    SketchStore,
    StoreCorruptionError,
)
from repro.store.format import snapshot_filename

MEMORY = 2048


def fresh_sketch(seed=0):
    return build_sketch("CM_fast", MEMORY, seed=seed)


def filled(count=150):
    sketch = fresh_sketch()
    sketch.insert_batch([f"k{i % 31}" for i in range(count)])
    return sketch


def states_equal(a, b):
    return set(a) == set(b) and all(
        np.array_equal(np.asarray(a[k]), np.asarray(b[k])) for k in a
    )


def crashing_store(tmp_path, plan, **kwargs):
    fs = CrashInjectingFileSystem(plan=plan)
    return SketchStore(str(tmp_path), algorithm="CM_fast", fs=fs, **kwargs), fs


def recovered_state(tmp_path):
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        result = store.restore_into(lambda: fresh_sketch())
        if result is None:
            return None, None
        warm, report = result
        return warm.state_snapshot(), report


def seed_store(tmp_path):
    """One committed epoch 0 so crash tests have a base to fall back to."""
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        store.publish_epoch(0, 150, filled())


# ------------------------------------------------------------- crash matrix
def test_kill_before_snapshot_fsync_falls_back(tmp_path):
    seed_store(tmp_path)
    # fsync #0 after reopen is the tmp-file sync of the epoch-1 snapshot:
    # crash right before it — the rename never happened, epoch 1 is a .tmp.
    store, fs = crashing_store(tmp_path, CrashPlan(crash_at_fsync=0))
    store.recover()
    bigger = filled(count=400)
    with pytest.raises(InjectedCrash):
        store.publish_epoch(1, 400, bigger)
    assert fs.crashed
    state, report = recovered_state(tmp_path)
    assert report.epoch_id == 0  # epoch 1 never committed
    assert states_equal(state, filled().state_snapshot())
    # The interrupted .tmp was quarantined, never trusted, never deleted.
    assert any(".tmp" in name for name in report.quarantined)


@pytest.mark.parametrize("completes", [False, True])
def test_kill_mid_rename_both_outcomes_recover(tmp_path, completes):
    seed_store(tmp_path)
    store, fs = crashing_store(
        tmp_path, CrashPlan(crash_at_replace=0, replace_completes=completes)
    )
    store.recover()
    bigger = filled(count=400)
    with pytest.raises(InjectedCrash):
        store.publish_epoch(1, 400, bigger)
    state, report = recovered_state(tmp_path)
    if completes:
        # The rename landed before the crash: epoch 1 is fully committed
        # (its own fsync preceded the rename) and must win.
        assert report.epoch_id == 1
        assert states_equal(state, bigger.state_snapshot())
    else:
        assert report.epoch_id == 0
        assert states_equal(state, filled().state_snapshot())


def test_torn_wal_tail_replays_only_the_prefix(tmp_path):
    seed_store(tmp_path)
    # Crash 10 bytes into the 3rd journal append (write #0 is the reopened
    # journal's first frame).
    store, fs = crashing_store(tmp_path, CrashPlan(crash_at_write=2, write_prefix=10))
    store.recover()
    store.append_batch(["a", "b"], [1, 2])
    store.append_batch(["c"], [5])
    with pytest.raises(InjectedCrash):
        store.append_batch(["torn"], [9])
    state, report = recovered_state(tmp_path)
    assert report.wal_frames == 2 and report.wal_items == 3
    assert report.wal_tail_error is not None
    assert any("wal" in name for name in report.quarantined)  # original kept
    reference = filled()
    reference.insert_batch(["a", "b"], [1, 2])
    reference.insert_batch(["c"], [5])
    assert states_equal(state, reference.state_snapshot())
    # The repair truncated in place: a third recovery is clean.
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        report = store.recover()
        assert report.wal_tail_error is None
        assert report.wal_frames == 2


def test_garbled_wal_frame_detected_by_frame_crc(tmp_path):
    seed_store(tmp_path)
    store, fs = crashing_store(tmp_path, CrashPlan(garble_write=1, garble_offset=12))
    store.recover()
    store.append_batch(["good"], [1])
    store.append_batch(["bad"], [2])  # written garbled — fsynced, "durable"
    store.close()
    assert fs.garbled == 1
    state, report = recovered_state(tmp_path)
    assert report.wal_frames == 1  # the garbled frame and after: quarantined
    assert "checksum" in report.wal_tail_error
    reference = filled()
    reference.insert_batch(["good"], [1])
    assert states_equal(state, reference.state_snapshot())


def test_corrupt_newest_epoch_falls_back_to_previous(tmp_path):
    with SketchStore(str(tmp_path), algorithm="CM_fast", retention_epochs=3) as store:
        store.publish_epoch(0, 150, filled())
        store.publish_epoch(1, 400, filled(count=400))
    # Rot one byte of the newest snapshot on the "medium".
    newest = tmp_path / snapshot_filename(1)
    blob = bytearray(newest.read_bytes())
    blob[len(blob) // 2] ^= 0x01
    newest.write_bytes(bytes(blob))
    state, report = recovered_state(tmp_path)
    assert report.epoch_id == 0
    assert states_equal(state, filled().state_snapshot())
    assert any(snapshot_filename(1) in name for name in report.quarantined)
    # The stale epoch-1 journal has no trustworthy base — quarantined too.
    assert any("wal-000000000001" in name for name in report.quarantined)


def test_everything_corrupt_is_a_typed_error_never_wrong_counts(tmp_path):
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        store.publish_epoch(0, 150, filled())
    for path in tmp_path.iterdir():
        if path.is_file():
            blob = bytearray(path.read_bytes())
            for offset in range(0, len(blob), 3):
                blob[offset] ^= 0xA5
            path.write_bytes(bytes(blob))
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        with pytest.raises(StoreCorruptionError):
            store.recover()


def test_crash_at_byte_sweep_always_recovers_a_batch_prefix(tmp_path):
    """Crash at *every* cumulative byte offset of a journaling run.

    Whatever the offset, recovery must produce exactly the snapshot plus
    some prefix of the appended batches — bit-identical to a process that
    stopped cleanly at that boundary.  This is the strongest form of the
    no-wrong-counts guarantee.
    """
    seed_store(tmp_path)
    batches = [(["a", "b"], [1, 2]), (["c"], [3]), (["d", "e", "f"], [1, 1, 4])]
    # The only legal recovery outcomes: the snapshot plus 0..3 whole batches.
    references = [filled().state_snapshot()]
    accumulator = filled()
    for keys, values in batches:
        accumulator.insert_batch(keys, values)
        references.append(accumulator.state_snapshot())

    offset = 1
    max_offset = 400
    while offset < max_offset:
        import shutil

        trial = tmp_path.parent / f"trial-{offset}"
        if trial.exists():
            shutil.rmtree(trial)
        shutil.copytree(tmp_path, trial)
        fs = CrashInjectingFileSystem(plan=CrashPlan(crash_at_byte=offset))
        store = SketchStore(str(trial), algorithm="CM_fast", fs=fs)
        crashed = False
        try:
            store.recover()
            for keys, values in batches:
                store.append_batch(keys, values)
        except InjectedCrash:
            crashed = True
        finally:
            try:
                store.close()
            except InjectedCrash:
                crashed = True
        if not crashed:
            break  # the whole run fit under the offset — sweep complete
        state, report = recovered_state(trial)
        assert any(
            states_equal(state, reference) for reference in references
        ), f"crash at byte {offset} recovered a non-boundary state"
        shutil.rmtree(trial)
        offset += 7  # dense-enough sweep without quadratic runtime

"""SketchStore lifecycle: publish/append/recover, retention, degradation.

Crash *injection* lives in ``test_crash_injection.py``; this file pins the
sunny-day contract and the policy edges: cold start only on a genuinely
empty directory, retention keeping exactly what it promises, snapshot
cadence trading journal length for write amplification, and the one-way
loud demotion when the disk misbehaves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketches.registry import build_sketch
from repro.store import (
    DEFAULT_RETENTION_EPOCHS,
    CrashInjectingFileSystem,
    CrashPlan,
    SketchStore,
    StoreError,
)
from repro.store.format import snapshot_filename, wal_filename

MEMORY = 2048


def filled(name="CM_fast", count=200, seed=0):
    sketch = build_sketch(name, MEMORY, seed=seed)
    sketch.insert_batch([f"k{i % 37}" for i in range(count)])
    return sketch


def states_equal(a, b):
    return set(a) == set(b) and all(
        np.array_equal(np.asarray(a[k]), np.asarray(b[k])) for k in a
    )


def test_cold_start_only_on_empty_directory(tmp_path):
    store = SketchStore(str(tmp_path))
    assert store.recover() is None
    store.close()


def test_publish_recover_round_trip(tmp_path):
    sketch = filled()
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        assert store.publish_epoch(0, 200, sketch)
        assert store.append_batch(["x", "y"], [3, 4])
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        warm, report = store.restore_into(lambda: build_sketch("CM_fast", MEMORY, seed=0))
        assert report.epoch_id == 0
        assert report.items == 200
        assert report.wal_frames == 1 and report.wal_items == 2
        assert report.items_total == 202
        reference = filled()
        reference.insert_batch(["x", "y"], [3, 4])
        assert states_equal(warm.state_snapshot(), reference.state_snapshot())


def test_recovery_prefers_newest_epoch(tmp_path):
    with SketchStore(str(tmp_path), algorithm="CM_fast", retention_epochs=4) as store:
        for epoch in range(3):
            store.publish_epoch(epoch, 200 + epoch, filled(count=200 + epoch))
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        report = store.recover()
        assert report.epoch_id == 2
        assert report.items == 202


def test_algorithm_mismatch_is_config_error_not_corruption(tmp_path):
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        store.publish_epoch(0, 200, filled())
    with SketchStore(str(tmp_path), algorithm="Count") as store:
        with pytest.raises(StoreError, match="holds 'CM_fast'"):
            store.recover()


def test_store_carries_registry_name_not_sketch_label(tmp_path):
    # Registry name "Ours" vs the sketch's own .name label — the store must
    # persist whatever its `algorithm` pin says, so reopen-with-same-pin works.
    with SketchStore(str(tmp_path), algorithm="Ours") as store:
        store.publish_epoch(0, 200, filled("Ours"))
    with SketchStore(str(tmp_path), algorithm="Ours") as store:
        assert store.recover().algorithm == "Ours"


def test_retention_compacts_old_epochs_and_journals(tmp_path):
    with SketchStore(str(tmp_path), algorithm="CM_fast", retention_epochs=2) as store:
        for epoch in range(5):
            store.publish_epoch(epoch, 200, filled())
        names = set(store._fs.listdir(str(tmp_path)))
        assert snapshot_filename(4) in names and snapshot_filename(3) in names
        assert snapshot_filename(2) not in names
        # Only the newest journal survives; older ones are subsumed.
        assert wal_filename(4) in names
        assert not any(wal_filename(e) in names for e in range(4))
        assert store.compacted_files > 0


def test_max_bytes_drops_oldest_retained_never_newest(tmp_path):
    with SketchStore(
        str(tmp_path), algorithm="CM_fast", retention_epochs=4, max_bytes=1
    ) as store:
        for epoch in range(3):
            store.publish_epoch(epoch, 200, filled())
        names = set(store._fs.listdir(str(tmp_path)))
        assert snapshot_filename(2) in names  # newest always kept
        assert snapshot_filename(1) not in names
        assert snapshot_filename(0) not in names


def test_snapshot_cadence_skips_epochs_but_keeps_journaling(tmp_path):
    with SketchStore(
        str(tmp_path), algorithm="CM_fast", snapshot_every_epochs=3
    ) as store:
        assert store.publish_epoch(0, 10, filled(count=10))
        store.append_batch(["a"], [1])
        assert not store.publish_epoch(1, 20, filled(count=20))  # skipped
        store.append_batch(["b"], [2])
        assert not store.publish_epoch(2, 30, filled(count=30))  # skipped
        assert store.snapshots_written == 1
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        report = store.recover()
        assert report.epoch_id == 0
        assert report.wal_frames == 2  # both between-epoch appends replay
    with SketchStore(
        str(tmp_path), algorithm="CM_fast", snapshot_every_epochs=3
    ) as store:
        store.recover()
        assert store.publish_epoch(3, 40, filled(count=40))  # cadence point


def test_disk_error_degrades_loudly_and_one_way(tmp_path):
    fs = CrashInjectingFileSystem(plan=CrashPlan(fail_writes=frozenset({3})))
    with SketchStore(str(tmp_path), algorithm="CM_fast", fs=fs) as store:
        assert store.publish_epoch(0, 200, filled())
        assert not store.degraded
        appended = [store.append_batch([f"z{i}"], [1]) for i in range(4)]
        assert not all(appended)
        assert store.degraded
        assert "journal append failed" in store.degrade_reason
        # Everything after demotion is a counted no-op — never an exception.
        assert not store.append_batch(["later"], [1])
        assert not store.publish_epoch(1, 300, filled(count=300))
        stats = store.stats()
        assert stats["degraded"]
        assert stats["dropped_batches"] >= 2
        assert stats["dropped_publishes"] == 1
        assert stats["store_errors"] >= 1
    # What was durably written before the demotion still recovers.
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        assert store.recover().epoch_id == 0


def test_slow_fsync_demotes_after_completing(tmp_path):
    fs = CrashInjectingFileSystem(plan=CrashPlan(delay_fsync_seconds=0.05))
    with SketchStore(
        str(tmp_path), algorithm="CM_fast", max_sync_seconds=0.01, fs=fs
    ) as store:
        store.publish_epoch(0, 200, filled())
        assert store.degraded
        assert store.slow_syncs >= 1
        assert "fsync took" in store.degrade_reason
    # The slow sync *completed* before demotion: the snapshot is on disk.
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        assert store.recover().epoch_id == 0


def test_append_without_journal_is_misuse(tmp_path):
    store = SketchStore(str(tmp_path))
    with pytest.raises(StoreError, match="no open journal"):
        store.append_batch(["a"], [1])


def test_constructor_validation(tmp_path):
    for kwargs in (
        {"retention_epochs": 0},
        {"snapshot_every_epochs": 0},
        {"max_bytes": 0},
        {"max_sync_seconds": 0},
    ):
        with pytest.raises(ValueError):
            SketchStore(str(tmp_path), **kwargs)
    assert DEFAULT_RETENTION_EPOCHS >= 2


def test_inspect_is_read_only_and_accurate(tmp_path):
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        store.publish_epoch(0, 200, filled())
        store.append_batch(["x"], [1])
    (tmp_path / "stray.bin").write_bytes(b"junk")
    before = sorted(p.name for p in tmp_path.iterdir())
    store = SketchStore(str(tmp_path))
    audit = store.inspect()
    assert sorted(p.name for p in tmp_path.iterdir()) == before  # untouched
    assert not audit["ok"]  # the stray taints the audit
    assert audit["strays"] == ["stray.bin"]
    assert audit["recoverable_epoch"] == 0
    snapshot_entry = audit["snapshots"][0]
    assert snapshot_entry["valid"] and snapshot_entry["items"] == 200
    wal_entry = audit["wals"][0]
    assert wal_entry["valid"] and wal_entry["frames"] == 1

"""Hostile-directory property tests: arbitrary damage, never wrong counts.

Hypothesis drives random damage campaigns against a real two-epoch store
directory — bit flips, truncations, extensions, deletions, any file, any
offset — and recovery must always land in one of exactly three lawful
outcomes:

1. the newest epoch (+ its journal prefix), bytes verified;
2. an older epoch, with everything untrustworthy quarantined;
3. a typed :class:`StoreCorruptionError`.

What it must *never* do is return state whose counts differ from some
crash-consistent prefix of the true history — that is checked by querying
the recovered sketch against the only states a lawful recovery can yield.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.registry import build_sketch
from repro.store import SketchStore, StoreCorruptionError, StoreError

MEMORY = 1536

#: The batches of history, in order.  Epoch 0 snapshots after batch 0;
#: epoch 1 after batch 2; batch 3 lives only in epoch 1's journal.
BATCHES = (
    (("a", "b", "a"), (1, 2, 3)),
    (("c", "a"), (5, 1)),
    (("d", "b", "c"), (2, 2, 1)),
    (("e", "a", "d"), (7, 1, 1)),
)
PROBE = ("a", "b", "c", "d", "e", "zzz")


def _sketch():
    return build_sketch("CM_fast", MEMORY, seed=9)


def _lawful_answer_sets():
    """Query answers of every crash-consistent prefix of the history."""
    answers = []
    sketch = _sketch()
    answers.append(tuple(sketch.query_batch(list(PROBE)).tolist()))
    for keys, values in BATCHES:
        sketch.insert_batch(list(keys), list(values))
        answers.append(tuple(sketch.query_batch(list(PROBE)).tolist()))
    return answers


LAWFUL = _lawful_answer_sets()


def build_store_dir(root) -> str:
    directory = os.path.join(str(root), "store")
    with SketchStore(directory, algorithm="CM_fast") as store:
        sketch = _sketch()
        sketch.insert_batch(*map(list, BATCHES[0]))
        store.publish_epoch(0, 3, sketch)
        for keys, values in BATCHES[1:3]:
            sketch.insert_batch(list(keys), list(values))
            store.append_batch(list(keys), list(values))
        store.publish_epoch(1, 8, sketch)
        store.append_batch(*map(list, BATCHES[3]))
    return directory


damage_ops = st.lists(
    st.tuples(
        st.sampled_from(["flip", "truncate", "extend", "delete"]),
        st.integers(min_value=0, max_value=9),  # file pick (mod file count)
        st.integers(min_value=0, max_value=100_000),  # offset / length seed
    ),
    min_size=1,
    max_size=6,
)


@given(damage_ops)
@settings(max_examples=120, deadline=None)
def test_arbitrary_damage_never_yields_wrong_counts(tmp_path_factory, ops):
    root = tmp_path_factory.mktemp("hostile")
    directory = build_store_dir(root)
    files = sorted(
        name
        for name in os.listdir(directory)
        if os.path.isfile(os.path.join(directory, name))
    )
    for kind, pick, magnitude in ops:
        if not files:
            break
        name = files[pick % len(files)]
        path = os.path.join(directory, name)
        blob = bytearray(open(path, "rb").read())
        if kind == "flip" and blob:
            blob[magnitude % len(blob)] ^= 1 << (magnitude % 8)
            open(path, "wb").write(bytes(blob))
        elif kind == "truncate":
            open(path, "wb").write(bytes(blob[: magnitude % (len(blob) + 1)]))
        elif kind == "extend":
            open(path, "ab").write(b"\xfe" * (1 + magnitude % 64))
        elif kind == "delete":
            os.remove(path)
            files.remove(name)

    store = SketchStore(directory, algorithm="CM_fast")
    try:
        result = store.restore_into(_sketch)
    except StoreCorruptionError:
        return  # lawful outcome 3: typed refusal
    finally:
        store.close()
    if result is None:
        # Only lawful if the damage deleted every store file.
        remaining = [
            name
            for name in os.listdir(directory)
            if os.path.isfile(os.path.join(directory, name))
        ]
        assert not remaining, "cold start over surviving state files"
        return
    warm, report = result
    answers = tuple(warm.query_batch(list(PROBE)).tolist())
    assert answers in LAWFUL, (
        f"recovered counts {answers} match no crash-consistent prefix "
        f"(report: {report})"
    )


def test_quarantine_preserves_damaged_originals(tmp_path):
    directory = build_store_dir(tmp_path)
    names = sorted(os.listdir(directory))
    victim = next(name for name in names if name.startswith("epoch-000000000001"))
    path = os.path.join(directory, victim)
    blob = bytearray(open(path, "rb").read())
    blob[30] ^= 0x08
    open(path, "wb").write(bytes(blob))
    with SketchStore(directory, algorithm="CM_fast") as store:
        report = store.recover()
        assert report.epoch_id == 0
    quarantine = os.path.join(directory, "quarantine")
    held = os.listdir(quarantine)
    assert any(victim in name for name in held)
    # Byte-for-byte the damaged original — forensics, not deletion.
    quarantined = next(name for name in held if victim in name)
    assert open(os.path.join(quarantine, quarantined), "rb").read() == bytes(blob)


def test_wrong_family_cannot_masquerade(tmp_path):
    directory = build_store_dir(tmp_path)
    with pytest.raises(StoreError):
        with SketchStore(directory, algorithm="Count") as store:
            store.recover()

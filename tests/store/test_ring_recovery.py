"""Warm restart rehydrates retained on-disk epochs into the temporal ring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.server import ServeConfig
from repro.store import SketchStore

MEMORY = 32 * 1024


def run_service(tmp_path, rounds, retention=None, **config_kwargs):
    kwargs = {} if retention is None else {"retention_epochs": retention}
    config = ServeConfig(
        "CM_fast", MEMORY, store_dir=str(tmp_path), publish_every_items=100,
        max_tracked_keys=64, **config_kwargs,
    )
    service = config.build_service()
    keys = np.arange(50, dtype=np.int64)
    for _ in range(rounds):
        service.ingest(np.tile(keys, 2))
    # A sub-threshold tail before the flush, so the final published epoch
    # differs from the last cadence epoch (flush republishes regardless).
    service.ingest(keys)
    service.flush()
    service.close()
    return config


def test_recovery_report_carries_older_snapshots(tmp_path):
    run_service(tmp_path, rounds=6)
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        report = store.recover()
    assert report is not None
    # Default retention keeps 2 snapshots: the chosen epoch plus one older,
    # oldest first, as (epoch_id, items, state) triples.
    assert len(report.ring_epochs) == 1
    epoch_id, items, state = report.ring_epochs[0]
    assert epoch_id == report.epoch_id - 1
    assert items < report.items
    assert "tables" in state


def test_warm_restart_seeds_the_ring(tmp_path):
    config = run_service(tmp_path, rounds=6)
    service = config.build_service()
    try:
        resident = service.ring.epochs
        # Older on-disk epoch + recovered epoch + the construction publish.
        assert len(resident) == 3
        assert resident[-1] == resident[0] + 2
        # The rehydrated older epoch answers pinned reads immediately.
        estimates, answered = service.serve_batch([0, 1, 2], epoch=resident[0])
        assert answered == resident[0]
        assert estimates.min() > 0
        # And is strictly lighter than the recovered epoch (fewer items).
        later, _ = service.serve_batch([0, 1, 2], epoch=resident[1])
        assert (estimates <= later).all() and (estimates < later).any()
    finally:
        service.close()


def test_rehydrated_pin_is_bit_identical_across_restart(tmp_path):
    config = run_service(tmp_path, rounds=6)
    first = config.build_service()
    # epochs[0] is the oldest retained snapshot; it falls off the store's
    # retention after this restart re-snapshots, so pin the recovered epoch
    # (epochs[1]), which the *next* restart rehydrates as its older seed.
    pinned_epoch = first.ring.epochs[1]
    expected, _ = first.serve_batch(list(range(10)), epoch=pinned_epoch)
    first.close()
    second = config.build_service()
    try:
        again, answered = second.serve_batch(list(range(10)), epoch=pinned_epoch)
        assert answered == pinned_epoch
        assert np.array_equal(again, expected)
    finally:
        second.close()


def test_inspect_lists_ring_resident_epochs(tmp_path):
    run_service(tmp_path, rounds=6)
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        audit = store.inspect()
    assert audit["ring_resident"] == sorted(audit["ring_resident"])
    assert len(audit["ring_resident"]) == 2  # default retention
    assert audit["ring_resident"][-1] == audit["recoverable_epoch"]


def test_cold_start_has_empty_ring_seed(tmp_path):
    config = ServeConfig("CM_fast", MEMORY, store_dir=str(tmp_path))
    service = config.build_service()
    try:
        assert service.ring.epochs == (0,)  # construction publish only
    finally:
        service.close()
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        audit = store.inspect()
    assert isinstance(audit["ring_resident"], list)


def test_corrupt_older_snapshot_is_skipped_not_fatal(tmp_path):
    run_service(tmp_path, rounds=6)
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        audit = store.inspect()
    older = audit["ring_resident"][0]
    snapshot_file = next(
        entry["file"] for entry in audit["snapshots"] if entry["epoch"] == older
    )
    path = tmp_path / snapshot_file
    path.write_bytes(path.read_bytes()[:-8] + b"\x00" * 8)
    with SketchStore(str(tmp_path), algorithm="CM_fast") as store:
        report = store.recover()
    # The chosen (newest) epoch still recovers; the torn older snapshot is
    # simply absent from the ring seed.
    assert report is not None
    assert all(epoch_id != older for epoch_id, _, _ in report.ring_epochs)

"""On-disk format armor: every byte of damage must be *detected*.

The snapshot codec's contract is absolute: a decode either returns the
exact bytes-verified state or raises :class:`StoreCorruptionError` — there
is no input that decodes to *different* counts.  These tests earn that
claim the brute-force way: flip every bit of a real snapshot file,
truncate it at every length, extend it, and assert the typed error every
single time.  The WAL side pins the torn-tail prefix discipline: damage at
frame k never costs frames 0..k-1.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.registry import build_sketch
from repro.store.format import (
    MAX_WAL_FRAME_BYTES,
    STORE_FORMAT_VERSION,
    StoreCorruptionError,
    WAL_HEADER_BYTES,
    decode_snapshot_file,
    decode_wal_header,
    encode_snapshot_file,
    encode_wal_frame,
    encode_wal_header,
    parse_snapshot_filename,
    parse_wal_filename,
    read_wal,
    snapshot_filename,
    wal_filename,
)


def small_snapshot_blob():
    sketch = build_sketch("CM_fast", 512, seed=1)
    sketch.insert_batch([f"k{i}" for i in range(40)])
    return (
        encode_snapshot_file(
            sketch.state_snapshot(), "CM_fast", {"epoch_id": 3, "items": 40}
        ),
        sketch.state_snapshot(),
    )


def wal_blob(frames=3):
    blob = encode_wal_header(7)
    for index in range(frames):
        blob += encode_wal_frame([f"k{index}", f"q{index}"], [1, 2 + index])
    return blob


# ---------------------------------------------------------------- round trips
def test_snapshot_round_trip():
    blob, state = small_snapshot_blob()
    decoded, algorithm, meta = decode_snapshot_file(blob)
    assert algorithm == "CM_fast"
    assert meta["epoch_id"] == 3 and meta["items"] == 40
    assert set(decoded) == set(state)
    for key in state:
        assert np.array_equal(np.asarray(decoded[key]), np.asarray(state[key]))


def test_wal_round_trip():
    contents = read_wal(wal_blob())
    assert contents.epoch_id == 7
    assert contents.tail_error is None
    assert len(contents.batches) == 3
    assert contents.items == 6
    assert contents.valid_bytes == len(wal_blob())
    batch, values = contents.batches[2]
    assert list(values) == [1, 4]


def test_filenames_round_trip():
    assert parse_snapshot_filename(snapshot_filename(12)) == 12
    assert parse_wal_filename(wal_filename(12)) == 12
    assert parse_snapshot_filename(wal_filename(12)) is None
    assert parse_wal_filename("epoch-000000000012.snap") is None
    assert parse_snapshot_filename("epoch-12.snap") is None  # unpadded = stray
    # Lexical order equals epoch order — what recovery's scan relies on.
    assert sorted([snapshot_filename(2), snapshot_filename(10)]) == [
        snapshot_filename(2),
        snapshot_filename(10),
    ]


# ------------------------------------------------------------ hostile bytes
def test_every_single_bit_flip_is_detected():
    blob, _ = small_snapshot_blob()
    blob = bytearray(blob)
    for offset in range(len(blob)):
        for bit in range(8):
            blob[offset] ^= 1 << bit
            with pytest.raises(StoreCorruptionError):
                decode_snapshot_file(bytes(blob))
            blob[offset] ^= 1 << bit
    # The pristine blob still decodes (the loop restored every flip).
    decode_snapshot_file(bytes(blob))


def test_every_truncation_is_detected():
    blob, _ = small_snapshot_blob()
    for length in range(len(blob)):
        with pytest.raises(StoreCorruptionError):
            decode_snapshot_file(blob[:length])


def test_extension_is_detected():
    blob, _ = small_snapshot_blob()
    for extra in (b"\x00", b"\xff" * 7, blob[:16]):
        with pytest.raises(StoreCorruptionError):
            decode_snapshot_file(blob + extra)


def test_unknown_version_is_typed_not_misparsed():
    blob, _ = small_snapshot_blob()
    damaged = blob[:4] + bytes([STORE_FORMAT_VERSION + 1]) + blob[5:]
    with pytest.raises(StoreCorruptionError, match="version"):
        decode_snapshot_file(damaged)


@given(st.binary(max_size=64))
@settings(max_examples=80, deadline=None)
def test_junk_never_decodes(junk):
    with pytest.raises(StoreCorruptionError):
        decode_snapshot_file(junk)


@given(st.binary(max_size=WAL_HEADER_BYTES - 1))
@settings(max_examples=40, deadline=None)
def test_short_wal_header_rejected(junk):
    with pytest.raises(StoreCorruptionError):
        decode_wal_header(junk)


# ----------------------------------------------------- torn-tail discipline
def test_torn_wal_tail_keeps_valid_prefix():
    blob = wal_blob(frames=3)
    frame = encode_wal_frame(["late"], [9])
    for cut in range(1, len(frame)):
        contents = read_wal(blob + frame[:cut])
        assert contents.tail_error is not None
        assert len(contents.batches) == 3  # the prefix never shrinks
        assert contents.valid_bytes == len(blob)


def test_wal_frame_bit_flip_stops_at_that_frame():
    header = encode_wal_header(1)
    first = encode_wal_frame(["a"], [1])
    second = encode_wal_frame(["b"], [2])
    damaged = bytearray(header + first + second)
    # Flip a bit inside the second frame's payload: frame 1 must survive.
    damaged[len(header) + len(first) + 9] ^= 0x40
    contents = read_wal(bytes(damaged))
    assert len(contents.batches) == 1
    assert contents.tail_error is not None
    assert contents.valid_bytes == len(header) + len(first)


def test_wal_insane_frame_length_rejected():
    import struct

    header = encode_wal_header(1)
    bogus = struct.pack(">II", MAX_WAL_FRAME_BYTES + 1, 0)
    contents = read_wal(header + bogus + b"x" * 32)
    assert contents.batches == ()
    assert "claims" in contents.tail_error


def test_wal_header_damage_is_fatal():
    blob = bytearray(wal_blob())
    blob[0] ^= 0xFF
    with pytest.raises(StoreCorruptionError):
        read_wal(bytes(blob))

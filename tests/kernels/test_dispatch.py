"""Kernel dispatch: registry, env var, overrides and clean numba fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import dispatch
from repro.kernels.dispatch import (
    AUTO,
    BACKEND_NAMES,
    KERNEL_ENV_VAR,
    KernelUnavailableError,
    available_backends,
    default_backend_name,
    is_backend_available,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.sketches.cu import CUSketch

NUMBA_PRESENT = is_backend_available("numba")


@pytest.fixture(autouse=True)
def clean_dispatch_state(monkeypatch):
    """Isolate the process-wide default and env var per test."""
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    previous = dispatch._DEFAULT_OVERRIDE
    dispatch._DEFAULT_OVERRIDE = None
    yield
    dispatch._DEFAULT_OVERRIDE = previous


def test_numpy_and_python_backends_always_available():
    names = available_backends()
    assert "numpy-grouped" in names
    assert "python-replay" in names
    # Resolution order of "auto" is fastest-first.
    assert names == tuple(n for n in BACKEND_NAMES if n in names)


def test_resolve_by_name_and_contract_surface():
    for name in ("numpy-grouped", "python-replay"):
        backend = resolve_backend(name)
        assert backend.name == name
        for entry_point in (
            backend.cu_update,
            backend.saturating_update,
            backend.reliable_layer_update,
            backend.elastic_update,
        ):
            assert callable(entry_point)


def test_unknown_backend_name_rejected():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend("sorcery")
    with pytest.raises(ValueError, match="unknown kernel backend"):
        set_default_backend("sorcery")


def test_auto_resolves_to_first_available():
    assert resolve_backend(AUTO).name == available_backends()[0]
    assert default_backend_name() == available_backends()[0]


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "python-replay")
    assert resolve_backend(None).name == "python-replay"
    assert CUSketch(1024, seed=0)._kernel.name == "python-replay"


def test_env_var_with_unknown_name_rejected(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "sorcery")
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend(None)


@pytest.mark.skipif(NUMBA_PRESENT, reason="numba installed: no fallback to exercise")
def test_missing_numba_explicit_request_raises():
    with pytest.raises(KernelUnavailableError, match="numba"):
        resolve_backend("numba")
    with pytest.raises(KernelUnavailableError, match="numba"):
        set_default_backend("numba")


@pytest.mark.skipif(NUMBA_PRESENT, reason="numba installed: no fallback to exercise")
def test_missing_numba_via_env_falls_back_cleanly(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV_VAR, "numba")
    monkeypatch.setattr(dispatch, "_WARNED_ENV_FALLBACK", False)
    with pytest.warns(RuntimeWarning, match="falling back"):
        backend = resolve_backend(None)
    assert backend.name == "numpy-grouped"
    # The warning fires once; later resolutions stay silent but identical.
    assert resolve_backend(None).name == "numpy-grouped"


@pytest.mark.skipif(not NUMBA_PRESENT, reason="numba not installed")
def test_numba_backend_loads_when_present():
    assert resolve_backend("numba").name == "numba"
    assert default_backend_name() == "numba"  # first in the auto order


def test_set_default_backend_applies_and_clears():
    set_default_backend("python-replay")
    assert default_backend_name() == "python-replay"
    assert CUSketch(1024, seed=0)._kernel.name == "python-replay"
    set_default_backend(None)
    assert default_backend_name() == available_backends()[0]


def test_use_backend_context_overrides_and_restores():
    before = default_backend_name()
    with use_backend("python-replay"):
        assert default_backend_name() == "python-replay"
        sketch = CUSketch(1024, seed=0)
    assert default_backend_name() == before
    # Sketches bind their backend at construction time.
    assert sketch._kernel.name == "python-replay"
    with use_backend(None):
        assert default_backend_name() == before


def test_sketch_constructor_argument_wins_over_default():
    set_default_backend("numpy-grouped")
    sketch = CUSketch(1024, seed=0, kernel="python-replay")
    assert sketch._kernel.name == "python-replay"


def test_settings_kernel_threads_into_experiment_runs():
    from repro.experiments.runner import ExperimentSettings, run_sketch
    from repro.streams.synthetic import zipf_stream

    stream = zipf_stream(2000, skew=1.2, universe=300, seed=5)
    default_run = run_sketch("CU_fast", 2048, stream, ExperimentSettings(batch_size=256))
    for name in available_backends():
        pinned = run_sketch(
            "CU_fast", 2048, stream, ExperimentSettings(batch_size=256, kernel=name)
        )
        assert pinned.report == default_run.report
        assert pinned.sketch._kernel.name == name


def test_backends_share_one_loaded_instance():
    assert resolve_backend("numpy-grouped") is resolve_backend("numpy-grouped")


def test_reliable_sketch_passes_kernel_to_mice_filter():
    from repro.core import ReliableSketch

    sketch = ReliableSketch.from_memory(2048, tolerance=25, seed=0, kernel="python-replay")
    assert sketch._kernel.name == "python-replay"
    assert sketch.mice_filter._kernel is sketch._kernel


def test_empty_batches_are_noops_on_every_backend():
    for name in available_backends():
        backend = resolve_backend(name)
        tables = np.zeros((2, 4), dtype=np.int64)
        backend.cu_update(tables, np.zeros((2, 0), dtype=np.int64), np.zeros(0, dtype=np.int64))
        leftovers = backend.saturating_update(
            tables, np.zeros((2, 0), dtype=np.int64), np.zeros(0, dtype=np.int64), 3
        )
        assert leftovers.shape == (0,)
        assert not tables.any()

"""KeyInterner bounds: adversarial key spaces must fail loudly, not grow.

ROADMAP follow-on from PR 4: the interner's dict + id table grow with the
distinct keys ingested.  ``max_keys`` turns that into a clear, stateless
failure (:class:`KeyInternerOverflowError`) instead of unbounded growth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.interning import KeyInterner, KeyInternerOverflowError
from repro.sketches.registry import build_sketch


def test_unbounded_by_default():
    interner = KeyInterner()
    assert [interner.intern(key) for key in range(100)] == list(range(100))
    assert interner.max_keys is None


def test_scalar_overflow_raises_and_preserves_state():
    interner = KeyInterner(max_keys=3)
    for key in ("a", "b", "c"):
        interner.intern(key)
    with pytest.raises(KeyInternerOverflowError):
        interner.intern("d")
    # existing ids survive; re-interning known keys still works
    assert interner.intern("a") == 0
    assert interner.intern("c") == 2
    assert len(interner) == 3
    assert "d" not in interner._ids


def test_batch_overflow_raises_on_both_paths():
    # int fast path (vectorized table)
    interner = KeyInterner(max_keys=5)
    interner.intern_batch([0, 1, 2], np.asarray([0, 1, 2], dtype=np.int64))
    with pytest.raises(KeyInternerOverflowError):
        interner.intern_batch(
            [3, 4, 5, 6], np.asarray([3, 4, 5, 6], dtype=np.int64)
        )
    # object path (no int array)
    interner = KeyInterner(max_keys=2)
    with pytest.raises(KeyInternerOverflowError):
        interner.intern_batch(["x", "y", "z"])


def test_lookup_never_grows_a_bounded_interner():
    interner = KeyInterner(max_keys=2)
    interner.intern_batch([1, 2], np.asarray([1, 2], dtype=np.int64))
    ids = interner.lookup_batch([1, 2, 3, 4], np.asarray([1, 2, 3, 4], dtype=np.int64))
    assert ids[:2].tolist() == [0, 1]
    assert (ids[2:] < 0).all()  # unknown, not assigned
    assert len(interner) == 2


def test_bad_bound_rejected():
    with pytest.raises(ValueError):
        KeyInterner(max_keys=0)


@pytest.mark.parametrize("name", ("Ours", "Elastic"))
def test_sketch_level_bound_surfaces_cleanly(name):
    """Registry-built sketches thread max_interned_keys to their interner."""
    sketch = build_sketch(name, 16 * 1024, seed=0, max_interned_keys=50)
    with pytest.raises(KeyInternerOverflowError):
        sketch.insert_batch(list(range(500)))


def test_bounded_sketch_keeps_answering_after_overflow():
    sketch = build_sketch("Ours", 16 * 1024, seed=0, max_interned_keys=64)
    sketch.insert_batch(list(range(60)))
    before = sketch.query_batch(list(range(60))).copy()
    with pytest.raises(KeyInternerOverflowError):
        sketch.insert_batch(list(range(100, 400)))
    # interned state is intact: known keys answer exactly as before (the
    # overflow fired during interning, before any table mutation)
    assert (sketch.query_batch(list(range(60))) == before).all()


# ------------------------------------------------------------------ LRU mode
def test_lru_requires_max_keys_and_known_policy():
    with pytest.raises(ValueError):
        KeyInterner(evict="lru")
    with pytest.raises(ValueError):
        KeyInterner(max_keys=4, evict="fifo")


def test_lru_recycles_least_recently_interned_id():
    interner = KeyInterner(max_keys=3, evict="lru")
    assert [interner.intern(key) for key in ("a", "b", "c")] == [0, 1, 2]
    # "a" is the stalest; the fourth key takes its id.
    assert interner.intern("d") == 0
    assert interner.id_to_key[0] == "d"
    assert "a" not in interner._ids
    assert len(interner) == 3
    # Re-interning "a" now evicts "b" (the new stalest).
    assert interner.intern("a") == 1
    assert "b" not in interner._ids


def test_lru_recency_advances_on_intern():
    interner = KeyInterner(max_keys=3, evict="lru")
    for key in ("a", "b", "c"):
        interner.intern(key)
    interner.intern("a")  # refresh: "b" becomes the eviction victim
    assert interner.intern("d") == 1
    assert "b" not in interner._ids
    assert interner._ids["a"] == 0


def test_lru_table_entry_cleared_on_eviction():
    interner = KeyInterner(max_keys=2, evict="lru")
    interner.intern_batch([5, 6], np.asarray([5, 6], dtype=np.int64))
    interner.intern(7)  # evicts 5 from dict AND the vectorized table
    ids = interner.lookup_batch([5, 6, 7], np.asarray([5, 6, 7], dtype=np.int64))
    assert ids[0] < 0  # evicted key is unknown again
    assert ids[1].item() == 1
    assert ids[2].item() == 0  # recycled id


def test_lru_batch_touches_at_batch_granularity():
    interner = KeyInterner(max_keys=4, evict="lru")
    interner.intern_batch([0, 1], np.asarray([0, 1], dtype=np.int64))
    interner.intern_batch([2, 3], np.asarray([2, 3], dtype=np.int64))
    # Both ids of the first batch share one clock tick; np.argmin breaks the
    # tie at the lowest id, so key 0 is evicted first, then key 1.
    assert interner.intern("x") == 0
    assert interner.intern("y") == 1
    assert 2 in interner._ids and 3 in interner._ids


def test_lru_on_assign_refires_on_reassignment():
    assignments = []
    interner = KeyInterner(max_keys=2, evict="lru")
    interner.on_assign = lambda key, item_id: assignments.append((key, item_id))
    interner.intern("a")
    interner.intern("b")
    interner.intern("c")  # recycles id 0
    assert assignments == [("a", 0), ("b", 1), ("c", 0)]


@pytest.mark.parametrize("name", ("Ours", "Coco", "HashPipe", "PRECISION"))
def test_sketch_level_lru_ingests_beyond_the_bound(name):
    # With eviction enabled the same hostile ingest that overflows a bounded
    # interner completes, and the interner never exceeds its bound.
    sketch = build_sketch(
        name, 16 * 1024, seed=0, max_interned_keys=50, interner_eviction="lru"
    )
    sketch.insert_batch(list(range(500)))
    assert len(sketch._interner) <= 50
    # Recently interned keys still answer through the batch path.
    assert sketch.query_batch(list(range(450, 500))).shape == (50,)

"""Kernel-parity matrix: every backend × every ported family × adversarial streams.

The conflict-free update kernels (:mod:`repro.kernels`) must be
*bit-identical* to replaying the same items one by one through the scalar
``insert`` path — state, statistics and hash-call accounting included.
This file pins that for each available backend against purpose-built
adversarial streams: every key hashing into a single bucket (width-1
sketches), two hot keys alternating at one cell (the worst case for the
round scheduler), single-key floods (the worst case for chain relaxation),
lock-heavy ReliableSketch layers, eviction-heavy Elastic buckets, mixed
key types and huge values (the fixpoint's overflow fallback).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ReliableSketch
from repro.core.config import LayerSpec, ReliableConfig
from repro.kernels import available_backends, use_backend
from repro.sketches.base import UnmergeableSketchError
from repro.sketches.coco import CocoSketch
from repro.sketches.cu import CUSketch
from repro.sketches.elastic import ElasticSketch
from repro.sketches.hashpipe import HashPipe
from repro.sketches.precision import Precision
from repro.streams import Stream, zipf_stream

BACKENDS = available_backends()


def _width1_reliable(seed: int) -> ReliableSketch:
    """A ReliableSketch whose every layer has exactly one bucket."""
    config = ReliableConfig(
        layers=(LayerSpec(1, 1, 9), LayerSpec(2, 1, 4), LayerSpec(3, 1, 0)),
        tolerance=13.0,
        r_w=2.0,
        r_lambda=2.0,
        mice_filter_fraction=0.0,
        mice_filter_bits=2,
        mice_filter_arrays=2,
        mice_filter_bytes=0.0,
    )
    assert all(layer.width == 1 for layer in config.layers)
    return ReliableSketch(config, seed=seed)


BUILDERS = {
    "CU": lambda seed: CUSketch(2048, depth=3, seed=seed),
    # entries_for(1 byte) == 0 counters -> every row collapses to width 1:
    # all keys collide on the single cell of every row.
    "CU(width1)": lambda seed: CUSketch(1, depth=3, seed=seed),
    "Ours": lambda seed: ReliableSketch.from_memory(2048, tolerance=10, seed=seed),
    "Ours(Raw)": lambda seed: ReliableSketch.from_memory(
        2048, tolerance=10, seed=seed, use_mice_filter=False
    ),
    "Ours(width1)": _width1_reliable,
    "Elastic": lambda seed: ElasticSketch(2048, eviction_ratio=2, seed=seed),
    # heavy_width == light_width == 1 with eviction on every other arrival.
    "Elastic(width1)": lambda seed: ElasticSketch(8, eviction_ratio=1, seed=seed),
    # Pipeline competitors: probabilistic replacement (Coco), eviction walks
    # (HashPipe) and probabilistic recirculation (PRECISION).  The width-1
    # variants force every key onto one cell per stage — maximal carry
    # chains and replacement churn.
    "Coco": lambda seed: CocoSketch(2048, seed=seed),
    "Coco(width1)": lambda seed: CocoSketch(1, seed=seed),
    "HashPipe": lambda seed: HashPipe(2048, seed=seed),
    "HashPipe(width1)": lambda seed: HashPipe(1, seed=seed),
    "PRECISION": lambda seed: Precision(2048, seed=seed),
    "PRECISION(width1)": lambda seed: Precision(1, seed=seed),
}

#: The three pipeline families share the struct-of-arrays layout below.
PIPELINE_FAMILIES = ("Coco", "HashPipe", "PRECISION")


def _mixed_stream(seed: int, count: int = 3000) -> list[tuple[object, int]]:
    rng = random.Random(seed)
    items: list[tuple[object, int]] = []
    for _ in range(count):
        key: object = rng.randrange(250)
        roll = rng.random()
        if roll < 0.1:
            key = f"flow-{rng.randrange(40)}"
        elif roll < 0.15:
            key = str(key).encode()
        items.append((key, rng.randrange(1, 7)))
    return items


STREAMS = {
    "zipf": lambda: [(item.key, item.value) for item in zipf_stream(3000, skew=1.3, universe=400, seed=9)],
    "single-key-flood": lambda: [(7, 1 + (i % 3)) for i in range(2000)],
    "two-key-alternating": lambda: [(i % 2, 1) for i in range(2000)],
    "mixed-types": lambda: _mixed_stream(21),
    "mice-swarm": lambda: [(i, 1) for i in range(2000)],
}

CHUNK_SIZES = (64, 1024, 10_000)


def _fill_scalar(sketch, items):
    for key, value in items:
        sketch.insert(key, value)


def _fill_batched(sketch, items, chunk_size):
    for start in range(0, len(items), chunk_size):
        chunk = items[start:start + chunk_size]
        sketch.insert_batch([k for k, _ in chunk], [v for _, v in chunk])


def _query_keys(items):
    seen = list(dict.fromkeys(key for key, _ in items))
    return seen + ["never-seen", b"never-seen", 10**9, -3]


def _assert_same_state(reference, candidate, items, context):
    keys = _query_keys(items)
    expected = [int(reference.query(key)) for key in keys]
    actual = candidate.query_batch(keys).tolist()
    assert expected == actual, context
    assert reference.hash_calls() == candidate.hash_calls(), context
    if isinstance(reference, ReliableSketch):
        assert reference.insert_failures == candidate.insert_failures, context
        assert reference.failed_value == candidate.failed_value, context
        assert (
            reference.inserts_settled_per_layer == candidate.inserts_settled_per_layer
        ), context
        for ref_layer, cand_layer in zip(reference._layers, candidate._layers):
            assert ref_layer.keys == cand_layer.keys, context
            assert (ref_layer.yes == cand_layer.yes).all(), context
            assert (ref_layer.no == cand_layer.no).all(), context
    if isinstance(reference, ElasticSketch):
        assert reference._heavy_keys == candidate._heavy_keys, context
        assert (reference._heavy_positive == candidate._heavy_positive).all(), context
        assert (reference._heavy_negative == candidate._heavy_negative).all(), context
        assert (reference._heavy_flags == candidate._heavy_flags).all(), context
        assert (reference._light == candidate._light).all(), context
    if isinstance(reference, CUSketch):
        snapshot = reference.state_snapshot()["tables"]
        assert (snapshot == candidate.state_snapshot()["tables"]).all(), context
    if isinstance(reference, (CocoSketch, HashPipe, Precision)):
        # Struct-of-arrays state: counters and the object-key mirror pin the
        # full bucket contents (ids are interner-relative, keys are not).
        assert (reference._counts == candidate._counts).all(), context
        assert reference._keys == candidate._keys, context
    if isinstance(reference, Precision):
        assert reference.recirculations == candidate.recirculations, context


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("family", sorted(BUILDERS))
@pytest.mark.parametrize("stream_name", sorted(STREAMS))
def test_kernel_matches_scalar_replay(backend, family, stream_name):
    items = STREAMS[stream_name]()
    for chunk_size in CHUNK_SIZES:
        reference = BUILDERS[family](seed=3)
        _fill_scalar(reference, items)
        with use_backend(backend):
            candidate = BUILDERS[family](seed=3)
        _fill_batched(candidate, items, chunk_size)
        _assert_same_state(
            reference, candidate, items,
            context=(backend, family, stream_name, chunk_size),
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_huge_values_stay_bit_identical(backend):
    # Counter chains far beyond float53 must stay exact (all-int kernels).
    items = [(i % 5, 2**54 + i) for i in range(150)]
    reference = CUSketch(1, depth=3, seed=1)
    _fill_scalar(reference, items)
    with use_backend(backend):
        candidate = CUSketch(1, depth=3, seed=1)
    _fill_batched(candidate, items, 150)
    _assert_same_state(reference, candidate, items, context=backend)


def test_fixpoint_fallback_is_bit_identical(monkeypatch):
    # With zero relaxation passes allowed, the numpy backend must take its
    # per-item fallback and still match scalar replay exactly.
    from repro.kernels import numpy_backend

    monkeypatch.setattr(numpy_backend, "_MAX_FIXPOINT_PASSES", 0)
    items = STREAMS["zipf"]()
    for family in ("CU", "Ours"):
        reference = BUILDERS[family](seed=6)
        _fill_scalar(reference, items)
        with use_backend("numpy-grouped"):
            candidate = BUILDERS[family](seed=6)
        _fill_batched(candidate, items, 512)
        _assert_same_state(reference, candidate, items, context=family)


@pytest.mark.parametrize("tail", [0, 10**9])
def test_scalar_tail_threshold_extremes_stay_bit_identical(monkeypatch, tail):
    # _SCALAR_TAIL=0 keeps every round in closed form; a huge threshold
    # replays the whole batch per item.  Both ends must agree with scalar.
    from repro.kernels import numpy_backend

    monkeypatch.setattr(numpy_backend, "_SCALAR_TAIL", tail)
    items = STREAMS["zipf"]()
    for family in ("Ours(Raw)", "Elastic"):
        reference = BUILDERS[family](seed=8)
        _fill_scalar(reference, items)
        with use_backend("numpy-grouped"):
            candidate = BUILDERS[family](seed=8)
        _fill_batched(candidate, items, 512)
        _assert_same_state(reference, candidate, items, context=(family, tail))


@pytest.mark.parametrize("tail", [0, 10**9])
def test_pipeline_tail_threshold_extremes_stay_bit_identical(monkeypatch, tail):
    # Tail thresholds of the pipeline kernels: 0 keeps every round on the
    # vectorized path; a huge threshold replays everything per item.  Both
    # ends must agree with scalar replay bit for bit.
    from repro.kernels import numpy_backend

    monkeypatch.setattr(numpy_backend, "_COCO_TAIL", tail)
    monkeypatch.setattr(numpy_backend, "_PRECISION_TAIL", tail)
    monkeypatch.setattr(numpy_backend, "_HASHPIPE_TAIL", tail)
    items = STREAMS["zipf"]()
    for family in PIPELINE_FAMILIES:
        reference = BUILDERS[family](seed=11)
        _fill_scalar(reference, items)
        with use_backend("numpy-grouped"):
            candidate = BUILDERS[family](seed=11)
        _fill_batched(candidate, items, 512)
        _assert_same_state(reference, candidate, items, context=(family, tail))


def test_pipeline_subchunk_recursion_stays_bit_identical(monkeypatch):
    # A tiny sub-chunk bound forces the conflict-splitting recursion of the
    # Coco/PRECISION engines on every batch; state must not drift.
    from repro.kernels import numpy_backend

    monkeypatch.setattr(numpy_backend, "_COCO_CHUNK", 17)
    monkeypatch.setattr(numpy_backend, "_PRECISION_CHUNK", 17)
    items = STREAMS["zipf"]()
    for family in ("Coco", "PRECISION"):
        reference = BUILDERS[family](seed=12)
        _fill_scalar(reference, items)
        with use_backend("numpy-grouped"):
            candidate = BUILDERS[family](seed=12)
        _fill_batched(candidate, items, 2048)
        _assert_same_state(reference, candidate, items, context=family)


@pytest.mark.parametrize("family", sorted(PIPELINE_FAMILIES))
def test_pipeline_merge_is_refused(family):
    # None of the pipeline competitors defines a lossless merge; the base
    # contract must refuse loudly rather than combine states incorrectly.
    first = BUILDERS[family](seed=3)
    second = BUILDERS[family](seed=3)
    first.insert(1, 2)
    second.insert(2, 3)
    with pytest.raises(UnmergeableSketchError):
        first.merge(second)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("family", sorted(PIPELINE_FAMILIES))
def test_pipeline_snapshot_roundtrip_continues_identically(backend, family):
    # Snapshot mid-stream, restore into a fresh sketch, finish the stream
    # batched: the result must equal one uninterrupted scalar fill.  Coco
    # and PRECISION snapshots carry the RNG draw counter, so the resumed
    # stream consumes the same replacement draws at the same positions.
    items = _mixed_stream(17)
    head, rest = items[:1700], items[1700:]
    reference = BUILDERS[family](seed=4)
    _fill_scalar(reference, items)
    with use_backend(backend):
        donor = BUILDERS[family](seed=4)
        resumed = BUILDERS[family](seed=4)
    _fill_batched(donor, head, 256)
    resumed.state_restore(donor.state_snapshot())
    _fill_batched(resumed, rest, 256)
    keys = _query_keys(items)
    expected = [int(reference.query(key)) for key in keys]
    assert expected == resumed.query_batch(keys).tolist(), (backend, family)
    assert (reference._counts == resumed._counts).all(), (backend, family)
    assert reference._keys == resumed._keys, (backend, family)
    if isinstance(reference, Precision):
        assert reference.recirculations == resumed.recirculations, backend


@pytest.mark.parametrize("backend", BACKENDS)
def test_lock_heavy_layers_push_survivors_identically(backend):
    # A narrow, shallow sketch under a flood locks buckets and overflows
    # items off the last layer: failure accounting must match exactly.
    items = [(key, 1) for key in [0, 1] * 600 + list(range(50)) * 4]
    reference = _width1_reliable(seed=2)
    _fill_scalar(reference, items)
    with use_backend(backend):
        candidate = _width1_reliable(seed=2)
    _fill_batched(candidate, items, 128)
    assert reference.insert_failures > 0  # the scenario actually overflows
    _assert_same_state(reference, candidate, items, context=backend)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=25, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(min_value=0, max_value=30), st.integers(min_value=1, max_value=9)),
        min_size=1,
        max_size=300,
    ),
    chunk_size=st.integers(min_value=1, max_value=64),
)
def test_property_random_streams_bit_identical(backend, data, chunk_size):
    for build in (
        lambda: CUSketch(64, depth=2, seed=5),
        lambda: ReliableSketch.from_memory(512, tolerance=5, seed=5),
        lambda: ElasticSketch(64, eviction_ratio=2, seed=5),
    ):
        reference = build()
        _fill_scalar(reference, data)
        with use_backend(backend):
            candidate = build()
        _fill_batched(candidate, data, chunk_size)
        keys = _query_keys(data)
        assert [int(reference.query(k)) for k in keys] == candidate.query_batch(keys).tolist()
        assert reference.hash_calls() == candidate.hash_calls()


def test_sharded_and_stream_fill_reach_kernels():
    # The kernels sit under ShardedSketch routing and insert_stream chunking
    # untouched: results equal the scalar fill of the same stream.
    from repro.sketches.sharded import ShardedSketch

    stream = Stream(_mixed_stream(4, count=1500), name="mixed")
    scalar = ShardedSketch.from_registry("CU_fast", 2048, shards=3, seed=1)
    for key, value in stream:
        scalar.insert(key, value)
    batched = ShardedSketch.from_registry("CU_fast", 2048, shards=3, seed=1)
    batched.insert_stream(stream, batch_size=256)
    keys = stream.keys()
    assert [int(scalar.query(k)) for k in keys] == batched.query_batch(keys).tolist()

"""Throughput measurement: counting, units, degenerate cases."""

from __future__ import annotations

import pytest

from repro.metrics.throughput import ThroughputResult, measure_throughput


def test_counts_every_operation():
    seen = []
    result = measure_throughput(seen.append, range(1_000))
    assert result.operations == 1_000
    assert len(seen) == 1_000
    assert result.seconds > 0


def test_mops_unit_conversion():
    result = ThroughputResult(operations=2_000_000, seconds=1.0)
    assert result.mops == pytest.approx(2.0)
    assert result.ops_per_second == pytest.approx(2_000_000)


def test_zero_elapsed_reports_infinite():
    result = ThroughputResult(operations=10, seconds=0.0)
    assert result.ops_per_second == float("inf")


def test_empty_input_is_valid():
    result = measure_throughput(lambda x: x, [])
    assert result.operations == 0


def test_generator_input_is_materialised_before_timing():
    def generator():
        yield from range(100)

    result = measure_throughput(lambda x: x, generator())
    assert result.operations == 100

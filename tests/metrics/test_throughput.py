"""Throughput measurement: counting, units, degenerate cases."""

from __future__ import annotations

import math

import pytest

from repro.metrics.throughput import (
    ThroughputResult,
    measure_batch_throughput,
    measure_throughput,
)


def test_counts_every_operation():
    seen = []
    result = measure_throughput(seen.append, range(1_000))
    assert result.operations == 1_000
    assert len(seen) == 1_000
    assert result.seconds > 0


def test_mops_unit_conversion():
    result = ThroughputResult(operations=2_000_000, seconds=1.0)
    assert result.mops == pytest.approx(2.0)
    assert result.ops_per_second == pytest.approx(2_000_000)


def test_zero_elapsed_reports_infinite():
    result = ThroughputResult(operations=10, seconds=0.0)
    assert result.ops_per_second == float("inf")
    assert result.mops == float("inf")


def test_zero_operations_report_zero_not_inf():
    # Regression: operations == 0 used to report inf (0 / 0-resolution timer).
    assert ThroughputResult(operations=0, seconds=0.0).ops_per_second == 0.0
    assert ThroughputResult(operations=0, seconds=0.0).mops == 0.0
    assert ThroughputResult(operations=0, seconds=1.0).ops_per_second == 0.0
    assert ThroughputResult(operations=0, seconds=1.0).mops == 0.0


def test_mops_is_finite_in_the_normal_case():
    result = ThroughputResult(operations=500, seconds=0.001)
    assert math.isfinite(result.mops)
    assert result.mops == pytest.approx(0.5)


def test_empty_input_is_valid():
    result = measure_throughput(lambda x: x, [])
    assert result.operations == 0
    assert result.ops_per_second == 0.0


def test_generator_input_is_materialised_before_timing():
    def generator():
        yield from range(100)

    result = measure_throughput(lambda x: x, generator())
    assert result.operations == 100


class TestMeasureBatchThroughput:
    def test_counts_items_not_chunks(self):
        chunks_seen = []
        result = measure_batch_throughput(chunks_seen.append, range(100), chunk_size=32)
        assert result.operations == 100
        assert [len(chunk) for chunk in chunks_seen] == [32, 32, 32, 4]

    def test_chunk_larger_than_input(self):
        chunks_seen = []
        result = measure_batch_throughput(chunks_seen.append, range(5), chunk_size=1000)
        assert result.operations == 5
        assert len(chunks_seen) == 1

    def test_empty_input(self):
        result = measure_batch_throughput(lambda chunk: chunk, [], chunk_size=8)
        assert result.operations == 0
        assert result.ops_per_second == 0.0

    def test_rejects_non_positive_chunk_size(self):
        with pytest.raises(ValueError):
            measure_batch_throughput(lambda chunk: chunk, range(10), chunk_size=0)


def test_latency_summary_from_seconds():
    from repro.metrics.throughput import LatencySummary

    summary = LatencySummary.from_seconds([0.001, 0.002, 0.003, 0.010])
    assert summary.count == 4
    assert summary.p50_ms == pytest.approx(2.5)
    assert summary.mean_ms == pytest.approx(4.0)
    assert summary.max_ms == pytest.approx(10.0)
    assert summary.p50_ms <= summary.p99_ms <= summary.max_ms


def test_latency_summary_empty_sample_is_all_zero():
    from repro.metrics.throughput import LatencySummary

    summary = LatencySummary.from_seconds([])
    assert summary == LatencySummary(0, 0.0, 0.0, 0.0, 0.0)

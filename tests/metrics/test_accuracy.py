"""Accuracy metrics: outliers, AAE, ARE, key restriction."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.metrics.accuracy import (
    average_absolute_error,
    average_relative_error,
    count_outliers,
    evaluate_accuracy,
)

TRUTH = {"a": 100, "b": 50, "c": 10, "d": 1}


def estimator(errors):
    """Build an estimator adding a fixed error per key."""
    return lambda key: TRUTH[key] + errors.get(key, 0)


def test_perfect_estimator_has_no_error():
    report = evaluate_accuracy(TRUTH, estimator({}), tolerance=5)
    assert report.outliers == 0
    assert report.aae == 0.0
    assert report.are == 0.0
    assert report.max_error == 0
    assert report.zero_outliers


def test_outlier_counting_uses_strict_inequality():
    # An error exactly equal to the tolerance is NOT an outlier (|err| <= Λ).
    report = evaluate_accuracy(TRUTH, estimator({"a": 5}), tolerance=5)
    assert report.outliers == 0
    report = evaluate_accuracy(TRUTH, estimator({"a": 6}), tolerance=5)
    assert report.outliers == 1
    assert report.outlier_keys == ["a"]


def test_negative_errors_count_by_absolute_value():
    report = evaluate_accuracy(TRUTH, estimator({"b": -20}), tolerance=5)
    assert report.outliers == 1
    assert report.max_error == 20


def test_aae_is_mean_absolute_error():
    report = evaluate_accuracy(TRUTH, estimator({"a": 4, "b": 2}), tolerance=10)
    assert report.aae == pytest.approx((4 + 2 + 0 + 0) / 4)


def test_are_divides_by_truth():
    report = evaluate_accuracy(TRUTH, estimator({"a": 10, "d": 1}), tolerance=100)
    assert report.are == pytest.approx((10 / 100 + 0 + 0 + 1 / 1) / 4)


def test_zero_truth_key_uses_absolute_error_for_are():
    truth = {"ghost": 0}
    report = evaluate_accuracy(truth, lambda key: 3, tolerance=10)
    assert report.are == pytest.approx(3.0)


def test_key_restriction_limits_evaluation():
    report = evaluate_accuracy(TRUTH, estimator({"a": 50, "c": 50}), tolerance=5, keys=["a", "b"])
    assert report.evaluated_keys == 2
    assert report.outliers == 1  # only "a" is evaluated and off


def test_missing_key_treated_as_zero_truth():
    report = evaluate_accuracy(TRUTH, lambda key: 7, tolerance=5, keys=["unknown"])
    assert report.outliers == 1
    assert report.max_error == 7


def test_empty_key_set_gives_empty_report():
    report = evaluate_accuracy({}, lambda key: 0, tolerance=5)
    assert report.outliers == 0
    assert report.evaluated_keys == 0


def test_outlier_keys_capped():
    truth = {i: 0 for i in range(100)}
    report = evaluate_accuracy(truth, lambda key: 1_000, tolerance=5, keep_outlier_keys=10)
    assert report.outliers == 100
    assert len(report.outlier_keys) == 10


def test_shortcut_functions_match_full_report():
    errors = {"a": 7, "c": 3}
    report = evaluate_accuracy(TRUTH, estimator(errors), tolerance=5)
    assert count_outliers(TRUTH, estimator(errors), 5) == report.outliers
    assert average_absolute_error(TRUTH, estimator(errors)) == pytest.approx(report.aae)
    assert average_relative_error(TRUTH, estimator(errors)) == pytest.approx(report.are)


@given(st.dictionaries(st.integers(0, 50), st.integers(1, 1000), min_size=1, max_size=50),
       st.integers(0, 30))
def test_overestimating_by_constant_never_exceeds_that_constant(truth, offset):
    report = evaluate_accuracy(truth, lambda key: truth[key] + offset, tolerance=offset)
    assert report.outliers == 0
    assert report.max_error == offset if truth else 0

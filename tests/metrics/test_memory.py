"""Memory accounting: field layouts, budget conversions, paper layouts."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.metrics.memory import (
    BYTES_PER_KB,
    BYTES_PER_MB,
    COUNTER_32,
    ELASTIC_HEAVY_BUCKET,
    FieldSpec,
    KEY_COUNTER_PAIR,
    MemoryModel,
    RELIABLE_BUCKET,
    SPACESAVING_ENTRY,
    kb,
    mb,
)


def test_unit_helpers():
    assert mb(1) == BYTES_PER_MB == 1024 * 1024
    assert kb(1) == BYTES_PER_KB == 1024
    assert mb(0.5) == 512 * 1024


def test_field_spec_rejects_nonpositive_width():
    with pytest.raises(ValueError):
        FieldSpec("bad", 0)


def test_bits_and_bytes_per_entry():
    model = MemoryModel((FieldSpec("a", 32), FieldSpec("b", 16)))
    assert model.bits_per_entry == 48
    assert model.bytes_per_entry == 6.0


def test_entries_for_budget_floor():
    model = MemoryModel((FieldSpec("counter", 32),))
    assert model.entries_for(100) == 25
    assert model.entries_for(3) == 1  # never returns zero entries


def test_bytes_for_entries_roundtrip():
    model = RELIABLE_BUCKET
    entries = model.entries_for(mb(1))
    assert model.bytes_for(entries) <= mb(1)
    assert model.bytes_for(entries + 1) > mb(1) - model.bytes_per_entry


def test_invalid_budget_rejected():
    with pytest.raises(ValueError):
        COUNTER_32.entries_for(0)
    with pytest.raises(ValueError):
        COUNTER_32.bytes_for(-1)


def test_paper_layout_widths():
    # §6.1.1: ReliableSketch buckets are 32-bit YES + 16-bit NO + 32-bit ID.
    assert RELIABLE_BUCKET.bits_per_entry == 80
    assert COUNTER_32.bits_per_entry == 32
    assert KEY_COUNTER_PAIR.bits_per_entry == 64
    assert ELASTIC_HEAVY_BUCKET.bits_per_entry == 104
    assert SPACESAVING_ENTRY.bits_per_entry == 160


def test_one_megabyte_counts_match_hand_calculation():
    assert COUNTER_32.entries_for(mb(1)) == mb(1) // 4
    assert RELIABLE_BUCKET.entries_for(mb(1)) == mb(1) * 8 // 80


@given(st.floats(min_value=64, max_value=1e8), st.integers(min_value=1, max_value=512))
def test_entries_never_exceed_budget(budget, bits):
    model = MemoryModel((FieldSpec("field", bits),))
    entries = model.entries_for(budget)
    # Allow the single-entry minimum to exceed a sub-entry budget.
    if entries > 1:
        assert model.bytes_for(entries) <= budget

"""Cross-module integration tests: the library used the way the paper uses it.

Each test stitches several subsystems together (streams → sketches → metrics
→ experiments/hardware) and checks an end-to-end claim of the paper rather
than a single module's behaviour.
"""

from __future__ import annotations

import pytest

import repro
from repro import (
    CountMinSketch,
    ReliableSketch,
    build_sketch,
    evaluate_accuracy,
    ip_trace,
    zipf_stream,
)
from repro.core import analysis
from repro.streams.readers import read_trace_file, write_trace_file


def test_public_api_surface():
    """Everything advertised in repro.__all__ is importable and non-None."""
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_headline_claim_zero_outliers_under_small_memory(small_ip_trace):
    """§6.2.1: under the same memory, ReliableSketch has zero outliers while
    Count-Min has many."""
    tolerance = 25
    memory = 4 * 1024  # deliberately tight for this stream

    reliable = ReliableSketch.from_memory(memory, tolerance=tolerance, seed=1)
    countmin = CountMinSketch(memory, depth=3, seed=1)
    reliable.insert_stream(small_ip_trace)
    countmin.insert_stream(small_ip_trace)

    truth = small_ip_trace.counts()
    ours = evaluate_accuracy(truth, reliable.query, tolerance)
    cm = evaluate_accuracy(truth, countmin.query, tolerance)
    assert ours.outliers < cm.outliers
    assert ours.outliers == 0


def test_error_sensing_end_to_end(small_ip_trace):
    """§6.5.1: sensed intervals contain the truth and track the actual error."""
    sketch = ReliableSketch.from_stream(
        total_value=small_ip_trace.total_value(), tolerance=25, seed=2
    )
    sketch.insert_stream(small_ip_trace)
    truth = small_ip_trace.counts()
    total_sensed = 0
    total_actual = 0
    for key, value in truth.items():
        result = sketch.query_with_error(key)
        assert result.contains(value)
        total_sensed += result.mpe
        total_actual += abs(result.estimate - value)
    assert total_sensed >= total_actual


def test_depth_formula_is_sufficient_in_practice():
    """A sketch whose depth follows Theorem 4's equation has no failures on a
    stream of the assumed size."""
    stream = zipf_stream(30_000, skew=1.3, universe=5_000, seed=3)
    tolerance = 25
    depth = analysis.required_depth(stream.total_value(), tolerance, delta=1e-6)
    sketch = ReliableSketch.from_stream(
        total_value=stream.total_value(), tolerance=tolerance, depth=max(depth, 4), seed=3
    )
    sketch.insert_stream(stream)
    assert sketch.insert_failures == 0


def test_registry_and_metrics_compose_for_all_algorithms(small_zipf_stream):
    """Every registered algorithm can be driven by the same loop."""
    from repro.sketches.registry import competitor_names

    truth = small_zipf_stream.counts()
    for name in competitor_names():
        sketch = build_sketch(name, 16 * 1024, seed=4)
        sketch.insert_stream(small_zipf_stream)
        report = evaluate_accuracy(truth, sketch.query, 25)
        assert report.evaluated_keys == len(truth)


def test_trace_file_round_trip_preserves_sketch_results(tmp_path):
    """Persisting a trace to disk and reloading it gives identical estimates."""
    stream = ip_trace(scale=0.001, seed=9)
    path = write_trace_file(stream, tmp_path / "ip.trace")
    reloaded = read_trace_file(path)

    direct = ReliableSketch.from_memory(8 * 1024, tolerance=25, seed=5)
    from_file = ReliableSketch.from_memory(8 * 1024, tolerance=25, seed=5)
    direct.insert_stream(stream)
    from_file.insert_stream(reloaded)
    for key in list(stream.counts())[:200]:
        assert direct.query(key) == from_file.query(key)


def test_weighted_byte_stream_end_to_end():
    """Value sums (not just frequencies): byte-volume accounting stays sound."""
    stream = ip_trace(scale=0.001, seed=11, value_model="bytes")
    tolerance = 25 * 800  # bytes
    sketch = ReliableSketch.from_stream(
        total_value=stream.total_value(), tolerance=tolerance, seed=6
    )
    sketch.insert_stream(stream)
    assert sketch.insert_failures == 0
    report = evaluate_accuracy(stream.counts(), sketch.query, tolerance)
    assert report.outliers == 0


def test_fpga_and_switch_models_accept_cpu_configuration():
    """The same configuration object drives the CPU sketch and both hardware models."""
    from repro.hardware.fpga import FpgaModel
    from repro.hardware.tofino import DataPlaneReliableSketch, TofinoResourceModel

    config = ReliableSketch.from_memory(64 * 1024, tolerance=25).config
    report = FpgaModel().synthesize(config)
    assert report.total_bram >= 1
    switch = DataPlaneReliableSketch(config, seed=1)
    switch.insert("flow", 3)
    assert switch.query("flow") == 3
    assert TofinoResourceModel(layers=min(config.depth, 12)).usage()["Stateful ALU"] > 0


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_reproducibility_across_runs(seed, small_zipf_stream):
    """Identical seeds give identical sketches, estimates and failure counts."""
    a = ReliableSketch.from_memory(16 * 1024, tolerance=25, seed=seed)
    b = ReliableSketch.from_memory(16 * 1024, tolerance=25, seed=seed)
    a.insert_stream(small_zipf_stream)
    b.insert_stream(small_zipf_stream)
    assert a.insert_failures == b.insert_failures
    for key in list(small_zipf_stream.counts())[:300]:
        assert a.query(key) == b.query(key)

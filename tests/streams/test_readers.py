"""Trace file round-trip: write, read, streaming iteration, error handling."""

from __future__ import annotations

import types

import pytest

from repro.streams.items import Stream
from repro.streams.readers import (
    iter_trace_batches,
    iter_trace_items,
    read_trace_file,
    write_trace_file,
)
from repro.streams.synthetic import zipf_stream


def test_round_trip_preserves_items(tmp_path):
    stream = zipf_stream(2_000, skew=1.0, universe=200, seed=6)
    path = write_trace_file(stream, tmp_path / "trace.txt")
    loaded = read_trace_file(path)
    assert len(loaded) == len(stream)
    assert loaded.counts() == stream.counts()
    assert [item.key for item in loaded] == [item.key for item in stream]


def test_string_keys_survive(tmp_path):
    stream = Stream([("alpha", 3), ("beta", 2), ("alpha", 1)])
    path = write_trace_file(stream, tmp_path / "strings.txt")
    loaded = read_trace_file(path)
    assert loaded.counts() == {"alpha": 4, "beta": 2}


def test_comments_and_blank_lines_skipped(tmp_path):
    path = tmp_path / "manual.txt"
    path.write_text("# a comment\n\n10 3\n20 4\n")
    loaded = read_trace_file(path)
    assert loaded.counts() == {10: 3, 20: 4}


def test_malformed_line_raises_with_location(tmp_path):
    path = tmp_path / "broken.txt"
    path.write_text("10 3\nnot-a-pair\n")
    with pytest.raises(ValueError, match="broken.txt:2"):
        read_trace_file(path)


def test_stream_name_defaults_to_filename(tmp_path):
    stream = Stream([(1, 1)])
    path = write_trace_file(stream, tmp_path / "myname.txt")
    assert read_trace_file(path).name == "myname"
    assert read_trace_file(path, name="override").name == "override"


class TestStreamingReaders:
    def test_iter_trace_items_is_lazy_and_exact(self, tmp_path):
        stream = zipf_stream(500, skew=1.0, universe=100, seed=2)
        path = write_trace_file(stream, tmp_path / "lazy.txt")
        iterator = iter_trace_items(path)
        assert isinstance(iterator, types.GeneratorType)
        assert list(iterator) == stream.items

    def test_iter_trace_batches_preserves_order_and_sizes(self, tmp_path):
        stream = zipf_stream(100, skew=0.8, universe=50, seed=3)
        path = write_trace_file(stream, tmp_path / "chunks.txt")
        chunks = list(iter_trace_batches(path, chunk_size=33))
        assert [len(chunk) for chunk in chunks] == [33, 33, 33, 1]
        flattened = [item for chunk in chunks for item in chunk]
        assert flattened == stream.items

    def test_iter_trace_batches_single_chunk_when_oversized(self, tmp_path):
        stream = Stream([(1, 1), (2, 2)])
        path = write_trace_file(stream, tmp_path / "small.txt")
        chunks = list(iter_trace_batches(path, chunk_size=10))
        assert len(chunks) == 1
        assert chunks[0] == stream.items

    def test_iter_trace_batches_rejects_bad_chunk_size(self, tmp_path):
        path = write_trace_file(Stream([(1, 1)]), tmp_path / "one.txt")
        with pytest.raises(ValueError):
            next(iter_trace_batches(path, chunk_size=0))

    def test_stream_iter_batches(self):
        stream = Stream([(i, 1) for i in range(10)])
        chunks = list(stream.iter_batches(4))
        assert [len(chunk) for chunk in chunks] == [4, 4, 2]
        assert [item for chunk in chunks for item in chunk] == stream.items
        with pytest.raises(ValueError):
            list(stream.iter_batches(0))

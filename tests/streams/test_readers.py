"""Trace file round-trip: write, read, exactness, error handling."""

from __future__ import annotations

import pytest

from repro.streams.items import Stream
from repro.streams.readers import read_trace_file, write_trace_file
from repro.streams.synthetic import zipf_stream


def test_round_trip_preserves_items(tmp_path):
    stream = zipf_stream(2_000, skew=1.0, universe=200, seed=6)
    path = write_trace_file(stream, tmp_path / "trace.txt")
    loaded = read_trace_file(path)
    assert len(loaded) == len(stream)
    assert loaded.counts() == stream.counts()
    assert [item.key for item in loaded] == [item.key for item in stream]


def test_string_keys_survive(tmp_path):
    stream = Stream([("alpha", 3), ("beta", 2), ("alpha", 1)])
    path = write_trace_file(stream, tmp_path / "strings.txt")
    loaded = read_trace_file(path)
    assert loaded.counts() == {"alpha": 4, "beta": 2}


def test_comments_and_blank_lines_skipped(tmp_path):
    path = tmp_path / "manual.txt"
    path.write_text("# a comment\n\n10 3\n20 4\n")
    loaded = read_trace_file(path)
    assert loaded.counts() == {10: 3, 20: 4}


def test_malformed_line_raises_with_location(tmp_path):
    path = tmp_path / "broken.txt"
    path.write_text("10 3\nnot-a-pair\n")
    with pytest.raises(ValueError, match="broken.txt:2"):
        read_trace_file(path)


def test_stream_name_defaults_to_filename(tmp_path):
    stream = Stream([(1, 1)])
    path = write_trace_file(stream, tmp_path / "myname.txt")
    assert read_trace_file(path).name == "myname"
    assert read_trace_file(path, name="override").name == "override"

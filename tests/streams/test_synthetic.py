"""Zipf workload generator: determinism, skew behaviour, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.synthetic import ZipfGenerator, uniform_stream, zipf_stream


def test_same_seed_same_stream():
    a = zipf_stream(5_000, skew=1.1, universe=500, seed=3)
    b = zipf_stream(5_000, skew=1.1, universe=500, seed=3)
    assert [item.key for item in a] == [item.key for item in b]


def test_different_seed_different_stream():
    a = zipf_stream(5_000, skew=1.1, universe=500, seed=3)
    b = zipf_stream(5_000, skew=1.1, universe=500, seed=4)
    assert [item.key for item in a] != [item.key for item in b]


def test_item_count_and_key_range():
    stream = zipf_stream(2_000, skew=0.8, universe=300, seed=1)
    assert len(stream) == 2_000
    assert all(0 <= item.key < 300 for item in stream)


def test_higher_skew_concentrates_mass():
    low = zipf_stream(30_000, skew=0.3, universe=2_000, seed=5)
    high = zipf_stream(30_000, skew=3.0, universe=2_000, seed=5)
    top_low = max(low.counts().values())
    top_high = max(high.counts().values())
    assert top_high > top_low * 5


def test_zero_skew_is_roughly_uniform():
    stream = uniform_stream(40_000, universe=100, seed=2)
    counts = np.array(list(stream.counts().values()))
    assert counts.max() < counts.mean() * 1.5
    assert stream.distinct_keys() == 100


def test_constant_value_model():
    stream = zipf_stream(1_000, skew=1.0, universe=50, seed=1, value=4)
    assert all(item.value == 4 for item in stream)
    assert stream.total_value() == 4_000


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ZipfGenerator(skew=-0.1)
    with pytest.raises(ValueError):
        ZipfGenerator(skew=1.0, universe=0)


def test_generator_draw_shape():
    generator = ZipfGenerator(skew=1.5, universe=100, seed=9)
    draws = generator.draw(256)
    assert draws.shape == (256,)
    assert draws.min() >= 0
    assert draws.max() < 100


def test_stream_name_defaults_to_skew():
    assert "1.5" in zipf_stream(10, skew=1.5, universe=5, seed=1).name

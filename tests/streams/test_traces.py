"""Trace surrogates: scaling, statistics, heavy-tail shape, value models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.traces import (
    TRACE_SPECS,
    hadoop_trace,
    ip_trace,
    load_trace,
    web_stream,
    zipf_rank_frequencies,
)


class TestRankFrequencies:
    def test_exact_distinct_and_total(self):
        frequencies = zipf_rank_frequencies(500, 10_000, exponent=1.2)
        assert len(frequencies) == 500
        assert frequencies.sum() == 10_000
        assert frequencies.min() >= 1

    def test_monotone_nonincreasing(self):
        frequencies = zipf_rank_frequencies(300, 9_000, exponent=1.3)
        assert all(frequencies[i] >= frequencies[i + 1] for i in range(len(frequencies) - 1))

    def test_heavy_tail_has_many_mice(self):
        frequencies = zipf_rank_frequencies(1_000, 25_000, exponent=1.2)
        mice_fraction = float((frequencies <= 3).mean())
        assert mice_fraction > 0.4

    def test_rejects_inconsistent_inputs(self):
        with pytest.raises(ValueError):
            zipf_rank_frequencies(100, 50, exponent=1.2)
        with pytest.raises(ValueError):
            zipf_rank_frequencies(0, 50, exponent=1.2)


class TestTraceSurrogates:
    def test_item_and_key_counts_scale(self):
        stream = ip_trace(scale=0.002, seed=1)
        spec = TRACE_SPECS["ip"]
        assert len(stream) == pytest.approx(spec.paper_items * 0.002, rel=0.01)
        assert stream.distinct_keys() == pytest.approx(spec.paper_distinct * 0.002, rel=0.01)

    def test_items_per_key_matches_paper_ratio(self):
        stream = web_stream(scale=0.002, seed=2)
        spec = TRACE_SPECS["web"]
        observed = len(stream) / stream.distinct_keys()
        assert observed == pytest.approx(spec.items_per_key, rel=0.05)

    def test_deterministic_per_seed(self):
        a = hadoop_trace(scale=0.001, seed=9)
        b = hadoop_trace(scale=0.001, seed=9)
        assert [item.key for item in a[:200]] == [item.key for item in b[:200]]

    def test_different_traces_have_different_shapes(self):
        hadoop = hadoop_trace(scale=0.002, seed=3)
        datacenter = load_trace("datacenter", scale=0.002, seed=3)
        # Hadoop has very few, very heavy keys; the data-center trace has many
        # light keys.
        assert hadoop.distinct_keys() < datacenter.distinct_keys() / 10

    def test_unit_value_model_default(self):
        stream = ip_trace(scale=0.0005, seed=4)
        assert all(item.value == 1 for item in stream[:500])

    def test_bytes_value_model(self):
        stream = ip_trace(scale=0.0005, seed=4, value_model="bytes")
        values = np.array([item.value for item in stream])
        assert values.min() >= 40
        assert values.max() <= 1500
        assert len(np.unique(values)) > 10

    def test_unknown_value_model_rejected(self):
        with pytest.raises(ValueError):
            ip_trace(scale=0.0005, value_model="jumbo")

    def test_unknown_trace_rejected(self):
        with pytest.raises(ValueError):
            load_trace("does-not-exist")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            ip_trace(scale=0.0)

    def test_load_trace_dispatches_all_names(self):
        for name in TRACE_SPECS:
            stream = load_trace(name, scale=0.0005, seed=5)
            assert len(stream) > 0

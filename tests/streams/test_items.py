"""Stream/Item model: ground truth, unpacking, caching."""

from __future__ import annotations

from collections import Counter

from hypothesis import given, strategies as st

from repro.streams.items import Item, Stream, exact_counts, total_value


def test_item_unpacks_to_key_value():
    key, value = Item("flow", 7)
    assert key == "flow"
    assert value == 7


def test_item_default_value_is_one():
    assert Item("x").value == 1


def test_stream_accepts_tuples_and_items():
    stream = Stream([("a", 2), Item("b", 3)])
    assert stream.counts() == Counter({"a": 2, "b": 3})


def test_stream_len_and_indexing():
    stream = Stream([("a", 1), ("b", 1), ("a", 1)])
    assert len(stream) == 3
    assert stream[0].key == "a"
    assert stream[2].key == "a"


def test_counts_are_cached_and_consistent(tiny_stream):
    first = tiny_stream.counts()
    second = tiny_stream.counts()
    assert first is second
    assert first["a"] == 50
    assert first["d"] == 1


def test_total_value_and_distinct(tiny_stream):
    assert tiny_stream.total_value() == 87
    assert tiny_stream.distinct_keys() == 5


def test_frequent_keys_threshold(tiny_stream):
    assert set(tiny_stream.frequent_keys(10)) == {"a", "b"}
    assert set(tiny_stream.frequent_keys(0)) == {"a", "b", "c", "d", "e"}
    assert tiny_stream.frequent_keys(1000) == []


def test_keys_returns_all_distinct(tiny_stream):
    assert sorted(tiny_stream.keys()) == ["a", "b", "c", "d", "e"]


def test_exact_counts_helper_matches_stream():
    items = [("x", 5), ("y", 1), ("x", 2)]
    assert exact_counts(items) == Counter({"x": 7, "y": 1})
    assert total_value(items) == 8


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=20), st.integers(min_value=1, max_value=9)),
        max_size=200,
    )
)
def test_ground_truth_matches_naive_accumulation(pairs):
    stream = Stream(pairs)
    naive: Counter = Counter()
    for key, value in pairs:
        naive[key] += value
    assert stream.counts() == naive
    assert stream.total_value() == sum(naive.values())
    assert stream.distinct_keys() == len(naive)

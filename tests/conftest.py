"""Shared fixtures for the test suite.

Streams are deliberately small (a few tens of thousands of items) so the full
suite runs in well under a minute while still exercising realistic collision
pressure; the full-scale experiments live in ``benchmarks/`` and the CLI.
"""

from __future__ import annotations

import pytest

from repro.streams.items import Stream
from repro.streams.synthetic import zipf_stream
from repro.streams.traces import ip_trace


@pytest.fixture(scope="session")
def small_zipf_stream() -> Stream:
    """A 20k-item Zipf(1.2) stream over 3k keys: heavy hitters plus mice."""
    return zipf_stream(count=20_000, skew=1.2, universe=3_000, seed=42)


@pytest.fixture(scope="session")
def small_ip_trace() -> Stream:
    """A 0.2%-scale surrogate IP trace (20k packets, ~800 flows)."""
    return ip_trace(scale=0.002, seed=7)


@pytest.fixture(scope="session")
def tiny_stream() -> Stream:
    """A deterministic hand-rolled stream for exact-value assertions."""
    items = []
    for key, count in [("a", 50), ("b", 30), ("c", 5), ("d", 1), ("e", 1)]:
        items.extend([(key, 1)] * count)
    return Stream(items, name="tiny")

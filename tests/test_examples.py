"""Smoke tests for the runnable walkthroughs under ``examples/``.

Each script runs in a subprocess exactly as the README instructs
(``PYTHONPATH=src python examples/<name>.py``) so a broken import of
``repro``, a renamed public symbol, or a crashed walkthrough fails the
tier-1 suite instead of rotting silently.  The two trace-heavy examples
honour ``REPRO_EXAMPLE_SCALE`` to keep the smoke runs fast.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))

#: Output every example must contain — proves the walkthrough reached its
#: point, not just that Python exited zero.
EXPECTED_OUTPUT = {
    "compare_sketches.py": "Algorithm",
    "error_guarantees.py": "error",
    "heavy_hitters.py": "precision / recall",
    "online_serving.py": "bit-identical to the local reference: True",
    "quickstart.py": "estimate",
    "switch_deployment.py": "bit-identical to a single collector-side sketch: True",
}


def test_every_example_is_covered():
    """A new example must register an expected-output marker here."""
    assert [path.name for path in EXAMPLES] == sorted(EXPECTED_OUTPUT)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_runs(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_EXAMPLE_SCALE"] = "0.004"
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=280,
    )
    assert completed.returncode == 0, (
        f"{script.name} exited {completed.returncode}:\n{completed.stderr[-2000:]}"
    )
    marker = EXPECTED_OUTPUT[script.name]
    assert marker.lower() in completed.stdout.lower(), (
        f"{script.name} ran but its output lost the marker {marker!r}"
    )

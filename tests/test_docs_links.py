"""The docs link contract, enforced locally (CI runs tools/check_links.py).

Every intra-repository link in README.md and docs/*.md must resolve; the
figure index must actually cover every ``benchmarks/test_fig*.py`` file, so
a new figure benchmark cannot land undocumented.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_links import check_file, iter_markdown_files  # noqa: E402


def test_docs_cover_the_expected_files():
    names = [path.name for path in iter_markdown_files(REPO_ROOT)]
    assert names[0] == "README.md"
    assert {"architecture.md", "api.md", "benchmarks.md", "figures.md"} <= set(names)


def test_no_broken_intra_repo_links():
    errors = [
        error
        for path in iter_markdown_files(REPO_ROOT)
        for error in check_file(path, REPO_ROOT)
    ]
    assert not errors, "\n".join(errors)


def test_figures_doc_maps_every_figure_benchmark():
    documented = (REPO_ROOT / "docs" / "figures.md").read_text()
    benchmark_names = sorted(
        path.name for path in (REPO_ROOT / "benchmarks").glob("test_*.py")
    )
    missing = [name for name in benchmark_names if name not in documented]
    assert not missing, f"benchmarks missing from docs/figures.md: {missing}"


def test_figures_doc_links_resolve_to_real_drivers():
    """Driver-module links in the index must point at existing modules."""
    text = (REPO_ROOT / "docs" / "figures.md").read_text()
    for target in re.findall(r"\]\((\.\./src/repro/[^)#]+)\)", text):
        assert (REPO_ROOT / "docs" / target).resolve().exists(), target

"""Layer configuration: double-exponential schedule, sizing formulas, budgets."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import (
    DEFAULT_MICE_FILTER_BITS,
    LayerSpec,
    ReliableConfig,
    recommended_total_buckets,
    theoretical_total_buckets,
    tolerance_for_buckets,
)
from repro.metrics.memory import RELIABLE_BUCKET, mb


class TestSizingFormulas:
    def test_recommended_matches_paper_formula(self):
        # W = (R_w R_λ)² / ((R_w−1)(R_λ−1)) · N/Λ with defaults R_w=2, R_λ=2.5.
        n, tolerance = 1_000_000, 25
        expected = math.ceil((2 * 2.5) ** 2 / (1 * 1.5) * n / tolerance)
        assert recommended_total_buckets(n, tolerance) == expected

    def test_theoretical_is_much_larger(self):
        n, tolerance = 1_000_000, 25
        assert theoretical_total_buckets(n, tolerance) > 10 * recommended_total_buckets(n, tolerance)

    def test_tolerance_inverse_of_recommended(self):
        n = 500_000
        tolerance = 25.0
        buckets = recommended_total_buckets(n, tolerance)
        recovered = tolerance_for_buckets(n, buckets)
        assert recovered == pytest.approx(tolerance, rel=0.01)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            recommended_total_buckets(0, 25)
        with pytest.raises(ValueError):
            tolerance_for_buckets(100, 0)


class TestLayerSpec:
    def test_zero_threshold_allowed(self):
        assert LayerSpec(index=3, width=5, threshold=0).threshold == 0

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            LayerSpec(index=1, width=5, threshold=-1)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            LayerSpec(index=1, width=0, threshold=5)


class TestBuild:
    def test_widths_decrease_geometrically(self):
        config = ReliableConfig.build(total_buckets=1_000, tolerance=25, depth=8)
        widths = config.widths
        for i in range(len(widths) - 1):
            assert widths[i] >= widths[i + 1]
        # First layer holds about (R_w - 1)/R_w = half of the buckets.
        assert widths[0] == pytest.approx(500, abs=2)

    def test_thresholds_decrease_and_sum_below_tolerance(self):
        config = ReliableConfig.build(total_buckets=1_000, tolerance=25, depth=10)
        thresholds = config.thresholds
        for i in range(len(thresholds) - 1):
            assert thresholds[i] >= thresholds[i + 1]
        assert config.threshold_sum <= 25

    def test_total_buckets_close_to_requested(self):
        config = ReliableConfig.build(total_buckets=2_000, tolerance=25, depth=12)
        assert config.total_buckets == pytest.approx(2_000, rel=0.05)

    def test_threshold_budget_reduces_thresholds(self):
        full = ReliableConfig.build(total_buckets=500, tolerance=25, depth=8)
        reduced = ReliableConfig.build(
            total_buckets=500, tolerance=25, depth=8, threshold_budget=10
        )
        assert reduced.threshold_sum <= 10
        assert reduced.threshold_sum < full.threshold_sum
        assert reduced.tolerance == 25

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ReliableConfig.build(total_buckets=0, tolerance=25)
        with pytest.raises(ValueError):
            ReliableConfig.build(total_buckets=10, tolerance=0)
        with pytest.raises(ValueError):
            ReliableConfig.build(total_buckets=10, tolerance=25, r_w=1.0)
        with pytest.raises(ValueError):
            ReliableConfig.build(total_buckets=10, tolerance=25, r_lambda=0.5)
        with pytest.raises(ValueError):
            ReliableConfig.build(total_buckets=10, tolerance=25, depth=0)

    @given(
        st.integers(min_value=10, max_value=100_000),
        st.floats(min_value=5, max_value=500),
        st.floats(min_value=1.5, max_value=10),
        st.floats(min_value=1.5, max_value=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_schedule_invariants_hold_for_any_parameters(self, buckets, tolerance, r_w, r_lambda):
        config = ReliableConfig.build(
            total_buckets=buckets, tolerance=tolerance, r_w=r_w, r_lambda=r_lambda
        )
        assert config.depth >= 1
        assert all(w >= 1 for w in config.widths)
        assert all(t >= 0 for t in config.thresholds)
        assert config.threshold_sum <= tolerance
        assert config.widths == tuple(sorted(config.widths, reverse=True))


class TestFromMemory:
    def test_memory_budget_respected(self):
        budget = mb(1)
        config = ReliableConfig.from_memory(budget, tolerance=25)
        assert config.memory_bytes <= budget * 1.01

    def test_mice_filter_takes_requested_fraction(self):
        budget = mb(1)
        config = ReliableConfig.from_memory(budget, tolerance=25, mice_filter_fraction=0.2)
        assert config.mice_filter_bytes == pytest.approx(0.2 * budget)
        assert config.use_mice_filter

    def test_disabling_filter_gives_all_memory_to_buckets(self):
        budget = mb(1)
        with_filter = ReliableConfig.from_memory(budget, tolerance=25, use_mice_filter=True)
        without = ReliableConfig.from_memory(budget, tolerance=25, use_mice_filter=False)
        assert not without.use_mice_filter
        assert without.total_buckets > with_filter.total_buckets
        # The geometric split truncates after `depth` layers, so the realised
        # bucket count is within a fraction of a percent of the budgeted one.
        assert without.total_buckets == pytest.approx(
            RELIABLE_BUCKET.entries_for(budget), rel=0.01
        )

    def test_filter_cap_is_budgeted_into_tolerance(self):
        config = ReliableConfig.from_memory(mb(1), tolerance=25, use_mice_filter=True)
        cap = (1 << DEFAULT_MICE_FILTER_BITS) - 1
        assert cap + config.threshold_sum <= 25

    def test_tolerance_derived_from_total_value_when_missing(self):
        config = ReliableConfig.from_memory(mb(1), total_value=10_000_000)
        assert config.tolerance > 0

    def test_missing_tolerance_and_total_value_rejected(self):
        with pytest.raises(ValueError):
            ReliableConfig.from_memory(mb(1))

    def test_nonpositive_memory_rejected(self):
        with pytest.raises(ValueError):
            ReliableConfig.from_memory(0, tolerance=25)


class TestFromStreamStatistics:
    def test_bucket_count_follows_recommendation(self):
        n, tolerance = 200_000, 25
        config = ReliableConfig.from_stream_statistics(n, tolerance, use_mice_filter=False)
        assert config.total_buckets == pytest.approx(
            recommended_total_buckets(n, tolerance), rel=0.05
        )

    def test_describe_contains_key_fields(self):
        config = ReliableConfig.from_stream_statistics(10_000, 25)
        description = config.describe()
        for field in ("depth", "widths", "thresholds", "tolerance", "memory_bytes"):
            assert field in description

"""Error-Sensible Bucket: the worked example of Figure 2 and the invariants of §3.1."""

from __future__ import annotations

import pytest

from repro.core.bucket import BucketQueryResult, ErrorSensibleBucket


def test_initial_state_is_empty():
    bucket = ErrorSensibleBucket()
    assert bucket.is_empty
    assert bucket.key is None
    assert bucket.yes == 0
    assert bucket.no == 0


def test_paper_figure2_example():
    """Reproduce the worked example of Figure 2 step by step."""
    bucket = ErrorSensibleBucket()
    bucket.insert("A", 2)
    assert (bucket.key, bucket.yes, bucket.no) == ("A", 2, 0)
    bucket.insert("A", 3)
    assert (bucket.key, bucket.yes, bucket.no) == ("A", 5, 0)
    bucket.insert("B", 10)
    # B's 10 negative votes reach 10 >= 5, so B takes over and counters swap.
    assert (bucket.key, bucket.yes, bucket.no) == ("B", 10, 5)

    result_a = bucket.query("A")
    assert result_a.estimate == 5 and result_a.mpe == 5
    result_b = bucket.query("B")
    assert result_b.estimate == 10 and result_b.mpe == 5


def test_first_insert_adopts_key_without_error():
    bucket = ErrorSensibleBucket()
    bucket.insert("x", 7)
    assert bucket.query("x") == BucketQueryResult(estimate=7, mpe=0)


def test_matching_key_accumulates_yes():
    bucket = ErrorSensibleBucket()
    bucket.insert("x", 3)
    bucket.insert("x", 4)
    assert bucket.yes == 7
    assert bucket.no == 0


def test_non_matching_key_accumulates_no_until_replacement():
    bucket = ErrorSensibleBucket()
    bucket.insert("x", 10)
    bucket.insert("y", 4)
    assert (bucket.key, bucket.yes, bucket.no) == ("x", 10, 4)
    bucket.insert("y", 6)
    # NO reaches 10 >= YES, replacement occurs.
    assert (bucket.key, bucket.yes, bucket.no) == ("y", 10, 10)


def test_query_for_non_candidate_uses_no():
    bucket = ErrorSensibleBucket()
    bucket.insert("x", 8)
    bucket.insert("y", 3)
    result = bucket.query("y")
    assert result.estimate == 3
    assert result.mpe == 3
    assert result.lower_bound == 0
    # Truth of y (3) is inside [0, 3].
    assert result.contains(3)


def test_query_result_bounds_and_contains():
    result = BucketQueryResult(estimate=20, mpe=5)
    assert result.lower_bound == 15
    assert result.upper_bound == 20
    assert result.contains(15) and result.contains(20) and result.contains(17)
    assert not result.contains(14) and not result.contains(21)


def test_lower_bound_never_negative():
    result = BucketQueryResult(estimate=2, mpe=10)
    assert result.lower_bound == 0


def test_rejects_nonpositive_value():
    bucket = ErrorSensibleBucket()
    with pytest.raises(ValueError):
        bucket.insert("x", 0)


def test_total_value_accounts_for_everything():
    bucket = ErrorSensibleBucket()
    for key, value in [("a", 3), ("b", 2), ("a", 4), ("c", 9)]:
        bucket.insert(key, value)
    assert bucket.total_value == 18


def test_clear_resets_bucket():
    bucket = ErrorSensibleBucket()
    bucket.insert("a", 5)
    bucket.clear()
    assert bucket.is_empty


def test_yes_always_at_least_no():
    """Post-insert invariant used throughout the sketch: YES >= NO."""
    bucket = ErrorSensibleBucket()
    sequence = [("a", 2), ("b", 5), ("a", 1), ("c", 7), ("b", 3), ("c", 1)]
    for key, value in sequence:
        bucket.insert(key, value)
        assert bucket.yes >= bucket.no

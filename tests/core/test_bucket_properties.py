"""Property-based tests of the Error-Sensible Bucket (§3.1 correctness claims).

The paper proves by induction that for any insertion sequence and any key e:

* if ``ID == e`` then ``f(e) ∈ [YES − NO, YES]``;
* if ``ID != e`` then ``f(e) ∈ [0, NO]``;

equivalently, the query's sensed interval always contains the truth and its
MPE (``NO``) bounds the absolute error.  Hypothesis explores arbitrary
insertion sequences to check exactly that.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.bucket import ErrorSensibleBucket

# Small key space so collisions are the norm, not the exception.
insertions = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), st.integers(min_value=1, max_value=20)),
    max_size=300,
)


@given(insertions)
@settings(max_examples=200, deadline=None)
def test_sensed_interval_always_contains_truth(sequence):
    bucket = ErrorSensibleBucket()
    truth: Counter = Counter()
    for key, value in sequence:
        bucket.insert(key, value)
        truth[key] += value
    for key in range(6):
        result = bucket.query(key)
        assert result.lower_bound <= truth[key] <= result.upper_bound


@given(insertions)
@settings(max_examples=200, deadline=None)
def test_mpe_bounds_absolute_error(sequence):
    bucket = ErrorSensibleBucket()
    truth: Counter = Counter()
    for key, value in sequence:
        bucket.insert(key, value)
        truth[key] += value
    for key in range(6):
        result = bucket.query(key)
        assert abs(result.estimate - truth[key]) <= result.mpe


@given(insertions)
@settings(max_examples=200, deadline=None)
def test_yes_plus_no_equals_total_inserted_value(sequence):
    bucket = ErrorSensibleBucket()
    total = 0
    for key, value in sequence:
        bucket.insert(key, value)
        total += value
    assert bucket.total_value == total


@given(insertions)
@settings(max_examples=200, deadline=None)
def test_candidate_estimate_dominates_candidate_truth(sequence):
    """When ID == e, YES >= f(e); when ID != e, NO >= f(e)."""
    bucket = ErrorSensibleBucket()
    truth: Counter = Counter()
    for key, value in sequence:
        bucket.insert(key, value)
        truth[key] += value
    if bucket.key is not None:
        assert bucket.yes >= truth[bucket.key]
        for key in range(6):
            if key != bucket.key:
                assert truth[key] <= bucket.no


@given(insertions)
@settings(max_examples=200, deadline=None)
def test_yes_never_below_no_after_any_sequence(sequence):
    bucket = ErrorSensibleBucket()
    for key, value in sequence:
        bucket.insert(key, value)
        assert bucket.yes >= bucket.no


@given(insertions)
@settings(max_examples=100, deadline=None)
def test_insertion_order_does_not_break_soundness(sequence):
    """Soundness holds for the reversed sequence as well (order independence
    of the *guarantee*, not of the exact state)."""
    truth: Counter = Counter()
    for key, value in sequence:
        truth[key] += value
    for ordering in (sequence, list(reversed(sequence))):
        bucket = ErrorSensibleBucket()
        for key, value in ordering:
            bucket.insert(key, value)
        for key in truth:
            result = bucket.query(key)
            assert result.contains(truth[key])

"""Mice filter: saturation, leftover accounting, estimate soundness."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mice_filter import MiceFilter


def test_cap_follows_counter_bits():
    assert MiceFilter(1024, counter_bits=2).cap == 3
    assert MiceFilter(1024, counter_bits=8).cap == 255


def test_absorbs_up_to_cap_then_returns_leftover():
    filt = MiceFilter(1024, counter_bits=2, seed=1)
    assert filt.absorb("k", 2) == 0      # 2 of 3 used
    assert filt.absorb("k", 2) == 1      # only 1 more fits
    assert filt.absorb("k", 5) == 5      # saturated: everything overflows
    assert filt.query("k") == 3


def test_mice_key_fully_absorbed():
    filt = MiceFilter(2048, counter_bits=2, seed=2)
    leftover = filt.absorb("mouse", 1)
    assert leftover == 0
    assert filt.query("mouse") >= 1


def test_query_never_underestimates_absorbed_value():
    filt = MiceFilter(512, counter_bits=4, seed=3)
    absorbed: Counter = Counter()
    for i in range(300):
        key = i % 40
        value = (i % 3) + 1
        leftover = filt.absorb(key, value)
        absorbed[key] += value - leftover
    for key, value in absorbed.items():
        assert filt.query(key) >= value
        assert filt.query(key) <= filt.cap


def test_memory_budget_respected():
    filt = MiceFilter(4096, counter_bits=2, arrays=2)
    assert filt.memory_bytes() <= 4096
    assert filt.parameters()["arrays"] == 2


def test_hash_calls_counted_per_operation():
    filt = MiceFilter(1024, counter_bits=2, arrays=2, seed=4)
    filt.reset_hash_calls()
    filt.absorb("a", 1)
    assert filt.hash_calls() == 2
    filt.query("a")
    assert filt.hash_calls() == 4


def test_saturation_diagnostic_increases():
    filt = MiceFilter(256, counter_bits=2, seed=5)
    assert filt.saturation() == 0.0
    for i in range(3_000):
        filt.absorb(i, 3)
    assert filt.saturation() > 0.5


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        MiceFilter(0)
    with pytest.raises(ValueError):
        MiceFilter(1024, counter_bits=0)
    with pytest.raises(ValueError):
        MiceFilter(1024, arrays=0)
    with pytest.raises(ValueError):
        MiceFilter(1024).absorb("x", 0)


@given(
    st.lists(
        st.tuples(st.integers(0, 30), st.integers(1, 6)),
        max_size=400,
    ),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=60, deadline=None)
def test_absorbed_plus_leftover_equals_value(sequence, bits):
    """No value is ever lost or double counted by the filter."""
    filt = MiceFilter(512, counter_bits=bits, seed=9)
    total_in = 0
    total_leftover = 0
    absorbed: Counter = Counter()
    for key, value in sequence:
        leftover = filt.absorb(key, value)
        assert 0 <= leftover <= value
        total_in += value
        total_leftover += leftover
        absorbed[key] += value - leftover
    assert total_in - total_leftover == sum(absorbed.values())
    for key, value in absorbed.items():
        # The filter reading is a sound overestimate of what it absorbed,
        # bounded by the cap.
        assert value <= filt.query(key) <= filt.cap

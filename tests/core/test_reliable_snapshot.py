"""ReliableSketch state snapshots: the ROADMAP follow-on from PR 3.

A restored replica must answer every query — point estimates *and* sensed
error bounds — bit-identically to the donor, continue ingesting
identically, and survive the distributed wire format.  Merging stays
unsupported (order-dependent lock/replace decisions have no lossless
combination).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ReliableSketch
from repro.distributed.ingest import run_distributed_ingest
from repro.distributed.wire import decode_state, encode_state
from repro.sketches.base import UnmergeableSketchError
from repro.sketches.registry import build_sketch
from repro.sketches.sharded import ShardedSketch
from repro.streams.synthetic import zipf_stream

MEMORY = 32 * 1024


def filled(name="Ours", count=8000, seed=5, **kwargs):
    sketch = build_sketch(name, MEMORY, seed=0, **kwargs)
    stream = zipf_stream(count, skew=1.2, universe=1500, seed=seed)
    sketch.insert_stream(stream, batch_size=512)
    return sketch, stream


@pytest.mark.parametrize("name", ("Ours", "Ours(Raw)"))
def test_restore_is_bit_identical(name):
    donor, stream = filled(name)
    replica = build_sketch(name, MEMORY, seed=0)
    replica.state_restore(donor.state_snapshot())
    keys = stream.keys() + ["missing", b"blob", -17]
    assert (replica.query_batch(keys) == donor.query_batch(keys)).all()
    for key in stream.keys()[:50]:
        mine, theirs = donor.query_with_error(key), replica.query_with_error(key)
        assert (mine.estimate, mine.mpe, mine.layers_visited) == (
            theirs.estimate, theirs.mpe, theirs.layers_visited,
        )
    assert replica.insert_failures == donor.insert_failures
    assert replica.failed_value == donor.failed_value
    assert replica.inserts_settled_per_layer == donor.inserts_settled_per_layer
    assert replica.operation_counts() == donor.operation_counts()


def test_restored_replica_continues_identically():
    donor, stream = filled()
    replica = build_sketch("Ours", MEMORY, seed=0)
    replica.state_restore(donor.state_snapshot())
    more = zipf_stream(3000, skew=1.1, universe=1500, seed=77)
    donor.insert_stream(more, batch_size=256)
    replica.insert_stream(more, batch_size=640)  # different chunking, same result
    keys = stream.keys()
    assert (replica.query_batch(keys) == donor.query_batch(keys)).all()


def test_snapshot_is_a_copy():
    donor, stream = filled()
    snapshot = donor.state_snapshot()
    before = {name: array.copy() for name, array in snapshot.items()}
    donor.insert_stream(zipf_stream(2000, skew=1.0, universe=1500, seed=3))
    for name, array in snapshot.items():
        assert (array == before[name]).all(), name


def test_snapshot_survives_the_wire_with_mixed_key_types():
    donor = build_sketch("Ours", 16 * 1024, seed=1)
    items = (
        [(f"flow-{i}", 1) for i in range(400)]
        + [(b"raw-%d" % i, 2) for i in range(200)]
        + [(-i, 1) for i in range(1, 150)]
        + [(i, 1) for i in range(900)]
    )
    donor.insert_stream(items, batch_size=128)
    state, algorithm, _ = decode_state(encode_state(donor.state_snapshot(), "Ours", {}))
    assert algorithm == "Ours"
    replica = build_sketch("Ours", 16 * 1024, seed=1)
    replica.state_restore(state)
    keys = [key for key, _ in items] + ["absent"]
    assert (replica.query_batch(keys) == donor.query_batch(keys)).all()


def test_restore_validates_before_mutating():
    donor, stream = filled()
    replica = build_sketch("Ours", MEMORY, seed=0)
    replica.state_restore(donor.state_snapshot())
    keys = stream.keys()
    expected = replica.query_batch(keys).copy()
    bad = donor.state_snapshot()
    bad["layer0_yes"] = np.zeros(3, dtype=np.int64)  # wrong shape
    with pytest.raises(ValueError):
        replica.state_restore(bad)
    missing = donor.state_snapshot()
    del missing["stats"]
    with pytest.raises(ValueError):
        replica.state_restore(missing)
    assert (replica.query_batch(keys) == expected).all()


def test_repeated_restore_resets_the_interner():
    """Restoring replaces the id space; stale ids never accumulate."""
    donor, stream = filled()
    replica = build_sketch("Ours", MEMORY, seed=0)
    for _ in range(3):
        replica.state_restore(donor.state_snapshot())
    assert len(replica._interner) <= len(donor._interner)
    keys = stream.keys()
    assert (replica.query_batch(keys) == donor.query_batch(keys)).all()


def test_restore_into_bounded_sketch_is_atomic():
    """A bounded interner that cannot hold the snapshot fails pre-commit."""
    from repro.kernels import KeyInternerOverflowError

    donor, stream = filled()
    occupied = sum(
        1 for layer in donor._layers for key in layer.keys if key is not None
    )
    bounded = build_sketch("Ours", MEMORY, seed=0, max_interned_keys=max(1, occupied // 2))
    bounded.insert_batch(list(range(5)))
    expected = bounded.query_batch(list(range(5))).copy()
    with pytest.raises(KeyInternerOverflowError):
        bounded.state_restore(donor.state_snapshot())
    # nothing was committed: the sketch still answers exactly as before
    assert (bounded.query_batch(list(range(5))) == expected).all()


def test_sharded_restore_is_atomic():
    """A snapshot malformed for a later shard must not touch earlier shards."""
    stream = zipf_stream(4000, skew=1.2, universe=800, seed=8)
    donor = ShardedSketch.from_registry("CM_fast", MEMORY, 2, seed=0)
    donor.insert_stream(stream, batch_size=512)
    target = ShardedSketch.from_registry("CM_fast", MEMORY, 2, seed=0)
    target.insert_stream(stream, batch_size=256)
    keys = stream.keys()
    expected = target.query_batch(keys).copy()
    bad = {
        name: array
        for name, array in donor.state_snapshot().items()
        if not name.startswith("shard1/")
    }
    with pytest.raises(ValueError):
        target.state_restore(bad)
    assert (target.query_batch(keys) == expected).all()


def test_emergency_store_refuses_snapshots():
    sketch = ReliableSketch.from_memory(MEMORY, use_emergency=True)
    sketch.insert(1, 5)
    with pytest.raises(UnmergeableSketchError):
        sketch.state_snapshot()
    with pytest.raises(UnmergeableSketchError):
        sketch.state_restore({})


def test_merge_stays_unsupported():
    donor, _ = filled()
    other, _ = filled(seed=6)
    assert not donor.mergeable and donor.snapshotable
    with pytest.raises(UnmergeableSketchError):
        donor.merge(other)


@pytest.mark.parametrize("transport", ("inproc", "pipe"))
def test_distributed_ingest_of_reliable_sketch(transport):
    """Remote Ours ingest: routed answers equal local sharded ingest."""
    stream = zipf_stream(12_000, skew=1.1, universe=2500, seed=9)
    items = [(item.key, item.value) for item in stream]
    result = run_distributed_ingest(
        "Ours", MEMORY, items, workers=2, transport=transport, chunk_size=1024, seed=0
    )
    assert result.merged is None  # snapshotable, not mergeable
    local = ShardedSketch.from_registry("Ours", MEMORY, 2, seed=0)
    local.insert_stream(items, batch_size=1024)
    keys = stream.keys()
    assert (result.sharded().query_batch(keys) == local.query_batch(keys)).all()
    assert list(result.items_per_worker) == local.items_per_shard.tolist()


def test_sharded_snapshot_round_trip():
    """ShardedSketch delegates snapshots shard by shard (incl. Ours)."""
    stream = zipf_stream(6000, skew=1.2, universe=1000, seed=4)
    donor = ShardedSketch.from_registry("Ours", MEMORY, 3, seed=0)
    donor.insert_stream(stream, batch_size=512)
    replica = ShardedSketch.from_registry("Ours", MEMORY, 3, seed=0)
    replica.state_restore(donor.state_snapshot())
    keys = stream.keys()
    assert (replica.query_batch(keys) == donor.query_batch(keys)).all()
    assert replica.items_per_shard.tolist() == donor.items_per_shard.tolist()


def test_unsnapshotable_shards_refuse():
    sharded = ShardedSketch.from_registry("SS", MEMORY, 2, seed=0)
    assert not sharded.snapshotable
    with pytest.raises(UnmergeableSketchError):
        sharded.state_snapshot()
    with pytest.raises(UnmergeableSketchError):
        sharded.state_restore({})

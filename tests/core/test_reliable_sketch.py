"""ReliableSketch unit tests: construction, insertion paths, queries, guarantees."""

from __future__ import annotations

import pytest

from repro.core.config import ReliableConfig
from repro.core.emergency import SpaceSavingEmergencyStore
from repro.core.reliable_sketch import ReliableSketch
from repro.metrics.accuracy import evaluate_accuracy
from repro.metrics.memory import mb


def make_sketch(**kwargs) -> ReliableSketch:
    defaults = dict(memory_bytes=32 * 1024, tolerance=25.0, seed=1)
    defaults.update(kwargs)
    return ReliableSketch.from_memory(**defaults)


class TestConstruction:
    def test_from_memory_respects_budget(self):
        sketch = make_sketch(memory_bytes=mb(1))
        assert sketch.memory_bytes() <= mb(1) * 1.01
        assert sketch.depth >= 7
        assert sketch.has_mice_filter

    def test_from_memory_default_tolerance_is_paper_default(self):
        sketch = ReliableSketch.from_memory(64 * 1024)
        assert sketch.tolerance == 25.0

    def test_from_stream_uses_recommended_sizing(self):
        sketch = ReliableSketch.from_stream(total_value=100_000, tolerance=25)
        assert sketch.config.total_buckets >= 100_000 / 25

    def test_raw_variant_has_no_filter(self):
        sketch = make_sketch(use_mice_filter=False)
        assert not sketch.has_mice_filter
        assert sketch.mice_filter is None

    def test_explicit_config_accepted(self):
        config = ReliableConfig.build(total_buckets=100, tolerance=25)
        sketch = ReliableSketch(config, seed=3)
        assert sketch.depth == config.depth

    def test_parameters_describe_structure(self):
        params = make_sketch().parameters()
        assert params["use_mice_filter"] is True
        assert len(params["widths"]) == params["depth"]


class TestInsertAndQuery:
    def test_single_key_exact(self):
        sketch = make_sketch()
        sketch.insert("solo", 1_000)
        result = sketch.query_with_error("solo")
        assert result.estimate == 1_000
        assert result.contains(1_000)

    def test_never_seen_key_estimate_bounded_by_mpe(self):
        sketch = make_sketch()
        for i in range(5_000):
            sketch.insert(i % 500)
        result = sketch.query_with_error("ghost-key")
        assert abs(result.estimate - 0) <= result.mpe

    def test_rejects_nonpositive_value(self):
        with pytest.raises(ValueError):
            make_sketch().insert("x", 0)

    def test_weighted_equivalent_to_repeated_unit(self):
        weighted = make_sketch(seed=5)
        repeated = make_sketch(seed=5)
        weighted.insert("flow", 40)
        for _ in range(40):
            repeated.insert("flow", 1)
        assert weighted.query("flow") == repeated.query("flow") == 40

    def test_query_equals_query_with_error_estimate(self, small_ip_trace):
        sketch = make_sketch()
        sketch.insert_stream(small_ip_trace)
        for key in list(small_ip_trace.counts())[:100]:
            assert sketch.query(key) == sketch.query_with_error(key).estimate

    def test_sensed_error_is_mpe(self):
        sketch = make_sketch()
        sketch.insert("a", 10)
        assert sketch.sensed_error("a") == sketch.query_with_error("a").mpe


class TestGuarantees:
    def test_zero_outliers_at_recommended_sizing(self, small_ip_trace):
        sketch = ReliableSketch.from_stream(
            total_value=small_ip_trace.total_value(), tolerance=25, seed=2
        )
        sketch.insert_stream(small_ip_trace)
        report = evaluate_accuracy(small_ip_trace.counts(), sketch.query, 25)
        assert sketch.insert_failures == 0
        assert report.outliers == 0
        assert report.max_error <= 25

    def test_all_errors_below_tolerance_without_failures(self, small_zipf_stream):
        sketch = ReliableSketch.from_stream(
            total_value=small_zipf_stream.total_value(), tolerance=25, seed=3
        )
        sketch.insert_stream(small_zipf_stream)
        assert sketch.insert_failures == 0
        truth = small_zipf_stream.counts()
        for key, value in truth.items():
            assert abs(sketch.query(key) - value) <= 25

    def test_intervals_contain_truth_without_failures(self, small_ip_trace):
        sketch = ReliableSketch.from_stream(
            total_value=small_ip_trace.total_value(), tolerance=25, seed=4
        )
        sketch.insert_stream(small_ip_trace)
        assert sketch.insert_failures == 0
        for key, value in small_ip_trace.counts().items():
            assert sketch.query_with_error(key).contains(value)

    def test_guarantee_flag_reflects_failures(self, small_ip_trace):
        tight = ReliableSketch.from_memory(2 * 1024, tolerance=25, seed=5)
        tight.insert_stream(small_ip_trace)
        assert tight.insert_failures > 0
        assert not tight.guarantee_intact
        comfortable = ReliableSketch.from_stream(
            total_value=small_ip_trace.total_value(), tolerance=25, seed=5
        )
        comfortable.insert_stream(small_ip_trace)
        assert comfortable.guarantee_intact

    def test_emergency_store_restores_interval_soundness(self, small_ip_trace):
        sketch = ReliableSketch.from_memory(
            2 * 1024, tolerance=25, seed=6, use_emergency=True
        )
        sketch.insert_stream(small_ip_trace)
        assert sketch.insert_failures > 0
        assert sketch.guarantee_intact
        for key, value in small_ip_trace.counts().items():
            assert sketch.query_with_error(key).contains(value)

    def test_custom_emergency_store_used(self):
        store = SpaceSavingEmergencyStore(capacity=16)
        config = ReliableConfig.build(total_buckets=4, tolerance=5, depth=2)
        sketch = ReliableSketch(config, seed=7, emergency=store)
        for i in range(200):
            sketch.insert(i, 10)
        assert sketch.emergency is store
        assert store.stored_keys > 0

    def test_mpe_never_exceeds_filter_cap_plus_threshold_sum(self, small_ip_trace):
        sketch = make_sketch(memory_bytes=16 * 1024)
        sketch.insert_stream(small_ip_trace)
        bound = 3 + sketch.config.threshold_sum
        for key in list(small_ip_trace.counts())[:300]:
            assert sketch.sensed_error(key) <= bound


class TestDiagnostics:
    def test_layer_occupancy_shape_and_range(self, small_ip_trace):
        sketch = make_sketch()
        sketch.insert_stream(small_ip_trace)
        occupancy = sketch.layer_occupancy()
        assert len(occupancy) == sketch.depth
        assert all(0.0 <= value <= 1.0 for value in occupancy)
        assert occupancy[0] > 0.0

    def test_locked_bucket_counts(self, small_ip_trace):
        tight = ReliableSketch.from_memory(4 * 1024, tolerance=25, seed=8)
        tight.insert_stream(small_ip_trace)
        locked = tight.locked_buckets()
        assert len(locked) == tight.depth
        assert sum(locked) > 0

    def test_settled_layer_counts_sum_to_inserts(self, small_zipf_stream):
        sketch = make_sketch()
        sketch.insert_stream(small_zipf_stream)
        settled = sum(sketch.inserts_settled_per_layer) + sketch.insert_failures
        assert settled == len(small_zipf_stream)

    def test_operation_counters(self):
        sketch = make_sketch()
        sketch.insert("a")
        sketch.insert("b")
        sketch.query("a")
        inserts, queries = sketch.operation_counts()
        assert inserts == 2
        assert queries == 1

    def test_hash_call_accounting_resets(self):
        sketch = make_sketch()
        sketch.insert("a")
        assert sketch.hash_calls() > 0
        sketch.reset_hash_calls()
        assert sketch.hash_calls() == 0

    def test_settled_layer_of_key(self):
        sketch = make_sketch()
        sketch.insert("k", 100)
        assert 1 <= sketch.settled_layer_of("k") <= sketch.depth

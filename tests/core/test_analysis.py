"""Theoretical analysis helpers: Theorems 4-5 formulas and Table 1."""

from __future__ import annotations

import math

import pytest

from repro.core import analysis


class TestConstants:
    def test_delta1_formula(self):
        # Δ₁ = 2 R_w² R_λ² (R_λ − 1); defaults R_w=2, R_λ=2.5 → 2·4·6.25·1.5.
        assert analysis.delta1_constant() == pytest.approx(2 * 4 * 6.25 * 1.5)

    def test_delta2_formula(self):
        # Δ₂ = 6 R_w³ R_λ⁴; defaults → 6·8·39.0625.
        assert analysis.delta2_constant() == pytest.approx(6 * 8 * 39.0625)

    def test_delta2_equals_paper_relation(self):
        # The paper also states Δ₂ = 3 (R_w R_λ² / (R_λ−1)) Δ₁; both must agree.
        r_w, r_lambda = 2.0, 2.5
        delta1 = analysis.delta1_constant(r_w, r_lambda)
        via_relation = 3 * (r_w * r_lambda**2 / (r_lambda - 1)) * delta1
        assert analysis.delta2_constant(r_w, r_lambda) == pytest.approx(via_relation)


class TestRequiredDepth:
    def test_depth_grows_slowly_with_stream_size(self):
        small = analysis.required_depth(1e5, 25, 1e-6)
        large = analysis.required_depth(1e9, 25, 1e-6)
        assert small <= large <= small + 4  # ln ln growth

    def test_depth_at_least_one(self):
        assert analysis.required_depth(100, 25, 0.1) >= 1

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            analysis.required_depth(0, 25, 0.1)
        with pytest.raises(ValueError):
            analysis.required_depth(100, 25, 0.0)


class TestFailureProbability:
    def test_double_exponential_decay(self):
        p = [analysis.failure_probability_upper_bound(d) for d in range(1, 7)]
        for earlier, later in zip(p, p[1:]):
            assert later < earlier
        # Doubling depth should square (or better) the bound.
        assert p[3] <= p[1] ** 2 * 10

    def test_underflow_clamped_to_zero(self):
        assert analysis.failure_probability_upper_bound(20) == 0.0

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            analysis.failure_probability_upper_bound(0)


class TestComplexityTable:
    def test_has_four_families(self):
        rows = analysis.complexity_table(1e7, 25, 1e-10, distinct_keys=4e5)
        assert [row.family for row in rows] == [
            "Counter-based (L1)",
            "Counter-based (L2)",
            "Heap-based",
            "ReliableSketch (Ours)",
        ]

    def test_ours_beats_counter_based_space_and_heap_time(self):
        rows = {row.family: row for row in analysis.complexity_table(1e7, 25, 1e-10, 4e5)}
        ours = rows["ReliableSketch (Ours)"]
        counter = rows["Counter-based (L1)"]
        heap = rows["Heap-based"]
        assert ours.space_estimate < counter.space_estimate
        assert ours.time_estimate < heap.time_estimate
        # Space is within a constant of the heap-based optimum.
        assert ours.space_estimate < heap.space_estimate * 2

    def test_amortized_time_bound_close_to_one(self):
        assert analysis.amortized_time_bound(1e7, 25, 1e-10) == pytest.approx(1.0, abs=0.01)

    def test_space_bound_formula(self):
        expected = 1e7 / 25 + math.log(1e10)
        assert analysis.space_bound(1e7, 25, 1e-10) == pytest.approx(expected)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            analysis.amortized_time_bound(0, 25, 0.1)
        with pytest.raises(ValueError):
            analysis.space_bound(100, 25, 2.0)


class TestEscapeFractions:
    def test_layer_one_receives_everything(self):
        fractions = analysis.predicted_escape_fractions(6)
        assert fractions[0] == pytest.approx(1.0)

    def test_fractions_decay_double_exponentially(self):
        fractions = analysis.predicted_escape_fractions(6)
        for earlier, later in zip(fractions, fractions[1:]):
            assert later <= earlier
        # The drop accelerates: ratio between consecutive layers shrinks.
        ratios = [later / earlier for earlier, later in zip(fractions, fractions[1:]) if earlier]
        assert ratios[2] <= ratios[0]

"""Property-based tests of the full ReliableSketch (§3.2 + §4 claims).

The properties mirror the paper's central claims:

1. With no insertion failure, the sensed interval of *every* key contains the
   truth and every error is at most filter-cap + Σ λ_i ≤ Λ.
2. With the emergency store enabled, the same holds even when the bucket
   layers are hopelessly undersized.
3. The total value is conserved: everything inserted is either in the filter,
   in some bucket, or counted as failed.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.config import ReliableConfig
from repro.core.reliable_sketch import ReliableSketch

key_value_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=120), st.integers(min_value=1, max_value=15)),
    max_size=400,
)

configs = st.builds(
    ReliableConfig.build,
    total_buckets=st.integers(min_value=32, max_value=512),
    tolerance=st.floats(min_value=10, max_value=200),
    depth=st.integers(min_value=4, max_value=14),
    r_w=st.floats(min_value=1.5, max_value=6),
    r_lambda=st.floats(min_value=1.5, max_value=6),
)


def _fill(sketch: ReliableSketch, sequence) -> Counter:
    truth: Counter = Counter()
    for key, value in sequence:
        sketch.insert(key, value)
        truth[key] += value
    return truth


@given(key_value_lists, configs, st.integers(min_value=0, max_value=2**31))
@settings(max_examples=120, deadline=None)
def test_interval_soundness_when_no_failures(sequence, config, seed):
    sketch = ReliableSketch(config, seed=seed)
    truth = _fill(sketch, sequence)
    if sketch.insert_failures:
        return  # The guarantee is only claimed for failure-free runs.
    for key, value in truth.items():
        result = sketch.query_with_error(key)
        assert result.contains(value)
        assert abs(result.estimate - value) <= result.mpe


@given(key_value_lists, configs, st.integers(min_value=0, max_value=2**31))
@settings(max_examples=120, deadline=None)
def test_error_bounded_by_threshold_sum_when_no_failures(sequence, config, seed):
    sketch = ReliableSketch(config, seed=seed)
    truth = _fill(sketch, sequence)
    if sketch.insert_failures:
        return
    bound = config.threshold_sum
    if sketch.has_mice_filter:
        bound += sketch.mice_filter.cap
    assert bound <= config.tolerance or not config.use_mice_filter
    for key, value in truth.items():
        assert abs(sketch.query(key) - value) <= bound


@given(key_value_lists, st.integers(min_value=0, max_value=2**31))
@settings(max_examples=80, deadline=None)
def test_emergency_store_makes_soundness_unconditional(sequence, seed):
    # A deliberately undersized sketch: failures are common.
    config = ReliableConfig.build(total_buckets=8, tolerance=20, depth=3)
    sketch = ReliableSketch(config, seed=seed, use_emergency=True)
    truth = _fill(sketch, sequence)
    for key, value in truth.items():
        assert sketch.query_with_error(key).contains(value)


@given(key_value_lists, configs, st.integers(min_value=0, max_value=2**31))
@settings(max_examples=80, deadline=None)
def test_value_conservation(sequence, config, seed):
    """Inserted value = filter content + bucket content + failed value."""
    sketch = ReliableSketch(config, seed=seed)
    truth = _fill(sketch, sequence)
    total_inserted = sum(truth.values())
    bucket_total = sum(
        bucket.total_value for layer in sketch._layers for bucket in layer
    )
    filter_total = 0
    if sketch.has_mice_filter:
        # The filter's own tables are CU-style so we cannot read the absorbed
        # total exactly; instead re-derive it from conservation of the rest.
        filter_total = total_inserted - bucket_total - sketch.failed_value
        assert 0 <= filter_total <= total_inserted
    else:
        assert bucket_total + sketch.failed_value == total_inserted


@given(key_value_lists, st.integers(min_value=0, max_value=2**31))
@settings(max_examples=60, deadline=None)
def test_estimates_never_negative_and_monotone_in_truth_zero(sequence, seed):
    config = ReliableConfig.build(total_buckets=64, tolerance=25, depth=8)
    sketch = ReliableSketch(config, seed=seed)
    _fill(sketch, sequence)
    for probe in range(130, 160):  # keys never inserted
        assert sketch.query(probe) >= 0


@given(
    st.lists(st.tuples(st.integers(0, 20), st.integers(1, 10)), min_size=1, max_size=150),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=60, deadline=None)
def test_insertion_order_does_not_affect_soundness(sequence, seed):
    truth: Counter = Counter()
    for key, value in sequence:
        truth[key] += value
    for ordering in (sequence, list(reversed(sequence)), sorted(sequence)):
        config = ReliableConfig.build(total_buckets=256, tolerance=30, depth=8)
        sketch = ReliableSketch(config, seed=seed)
        for key, value in ordering:
            sketch.insert(key, value)
        if sketch.insert_failures:
            continue
        for key, value in truth.items():
            assert sketch.query_with_error(key).contains(value)

"""Emergency stores: exact and SpaceSaving-backed overflow handling."""

from __future__ import annotations

import pytest

from repro.core.analysis import emergency_layer_capacity
from repro.core.emergency import ExactEmergencyStore, SpaceSavingEmergencyStore


class TestExactStore:
    def test_records_exact_leftovers(self):
        store = ExactEmergencyStore()
        store.insert("a", 3)
        store.insert("a", 4)
        store.insert("b", 1)
        assert store.query("a") == 7
        assert store.query("b") == 1
        assert store.query("absent") == 0
        assert store.stored_keys == 2

    def test_memory_grows_with_entries(self):
        store = ExactEmergencyStore()
        assert store.memory_bytes() == 0
        store.insert("x", 1)
        assert store.memory_bytes() > 0

    def test_rejects_nonpositive_value(self):
        with pytest.raises(ValueError):
            ExactEmergencyStore().insert("x", 0)


class TestSpaceSavingStore:
    def test_bounded_capacity(self):
        store = SpaceSavingEmergencyStore(capacity=4)
        for i in range(50):
            store.insert(i, 1)
        assert store.stored_keys <= 4
        assert store.capacity == 4

    def test_heavy_overflow_keys_kept(self):
        store = SpaceSavingEmergencyStore(capacity=8)
        store.insert("elephant", 500)
        for i in range(100):
            store.insert(f"mouse-{i}", 1)
        assert store.query("elephant") >= 500

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SpaceSavingEmergencyStore(capacity=0)

    def test_memory_reported(self):
        assert SpaceSavingEmergencyStore(capacity=10).memory_bytes() > 0


def test_theorem4_capacity_formula():
    """Capacity Δ₂ ln(1/Δ) grows as Δ shrinks and matches the constant."""
    small = emergency_layer_capacity(1e-2)
    tiny = emergency_layer_capacity(1e-10)
    assert tiny > small
    # Δ₂ = 6 R_w³ R_λ⁴ = 6 · 8 · 39.0625 = 1875 with the default ratios.
    assert emergency_layer_capacity(1 / 2.718281828459045) == pytest.approx(1875, rel=0.01)
    with pytest.raises(ValueError):
        emergency_layer_capacity(0.0)
    with pytest.raises(ValueError):
        emergency_layer_capacity(1.5)

"""delta_sketch: windowed estimates are exact epoch-delta subtractions."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.serve.snapshots import EpochSnapshot, replicate_sketch
from repro.sketches.base import UnmergeableSketchError
from repro.sketches.registry import build_sketch
from repro.temporal import delta_sketch

MEMORY = 16 * 1024


def publish(sketch) -> EpochSnapshot:
    frozen = replicate_sketch(sketch)
    return EpochSnapshot(
        epoch_id=publish.counter, items=0, sketch=frozen,
        published_at=time.perf_counter(),
    )


def setup_function(_):
    publish.counter = 0


def snapshot_after(sketch, pairs) -> EpochSnapshot:
    for key, value in pairs:
        sketch.insert(key, value)
    snap = publish(sketch)
    publish.counter += 1
    return snap


@pytest.mark.parametrize("name", ["CM_fast", "CM_acc", "Count"])
def test_window_is_bit_identical_to_fresh_fill(name):
    live = build_sketch(name, MEMORY, seed=4)
    early_items = [(i % 13, 2) for i in range(300)]
    late_items = [(i % 5, 7) for i in range(120)]
    earlier = snapshot_after(live, early_items)
    later = snapshot_after(live, late_items)
    window = delta_sketch(later, earlier)
    fresh = build_sketch(name, MEMORY, seed=4)
    for key, value in late_items:
        fresh.insert(key, value)
    keys = list(range(16))
    assert np.array_equal(window.query_batch(keys), fresh.query_batch(keys))


def test_inputs_are_not_mutated():
    live = build_sketch("CM_fast", MEMORY, seed=1)
    earlier = snapshot_after(live, [(1, 5)])
    later = snapshot_after(live, [(1, 5)])
    before_earlier = earlier.sketch.query(1)
    before_later = later.sketch.query(1)
    delta_sketch(later, earlier)
    assert earlier.sketch.query(1) == before_earlier
    assert later.sketch.query(1) == before_later


def test_backward_window_rejected():
    live = build_sketch("CM_fast", MEMORY, seed=1)
    earlier = snapshot_after(live, [(1, 1)])
    later = snapshot_after(live, [(2, 1)])
    with pytest.raises(ValueError):
        delta_sketch(earlier, later)
    with pytest.raises(ValueError):
        delta_sketch(earlier, earlier)


def test_unsubtractable_family_rejected():
    live = build_sketch("CU_fast", MEMORY, seed=1)
    earlier = snapshot_after(live, [(1, 1)])
    later = snapshot_after(live, [(2, 1)])
    with pytest.raises(UnmergeableSketchError):
        delta_sketch(later, earlier)

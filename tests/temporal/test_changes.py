"""diff_rankings: surges, drops, membership churn, fallback estimates."""

from __future__ import annotations

import json

import pytest

from repro.temporal import ChangeReport, KeyChange, diff_rankings


def test_surges_sorted_by_delta_descending():
    report = diff_rankings(
        [("a", 10), ("b", 10)], [("a", 40), ("b", 15)],
        earlier_epoch=1, later_epoch=2,
    )
    assert [change.key for change in report.surges] == ["a", "b"]
    assert report.surges[0].delta == 30
    assert report.drops == ()
    assert report.earlier_epoch == 1 and report.later_epoch == 2


def test_drops_sorted_most_negative_first():
    report = diff_rankings([("a", 50), ("b", 20)], [("a", 10), ("b", 15)])
    assert [change.delta for change in report.drops] == [-40, -5]


def test_min_delta_filters_small_moves():
    report = diff_rankings([("a", 10)], [("a", 12)], min_delta=5)
    assert report.surges == ()
    assert not report.has_changes
    with pytest.raises(ValueError):
        diff_rankings([], [], min_delta=0)


def test_membership_and_churn():
    report = diff_rankings([("a", 5), ("b", 4)], [("b", 4), ("c", 9)])
    assert report.new_keys == ("c",)
    assert report.vanished_keys == ("a",)
    assert report.churn == pytest.approx(0.5)


def test_churn_empty_rankings_is_zero():
    assert diff_rankings([], []).churn == 0.0


def test_absent_key_defaults_to_zero_estimate():
    # Client-side watch mode: a key missing from one ranking has an unknown
    # estimate, treated as 0 — the delta is then a lower bound.
    report = diff_rankings([], [("new", 25)])
    assert report.surges[0] == KeyChange("new", 0, 25)


def test_fallback_estimates_make_deltas_exact():
    # Server-side path: the service queries both epochs for the union, so a
    # key outside one ranking still gets its true estimate there.
    report = diff_rankings(
        [("a", 50)], [("b", 60)],
        before_estimates={"b": 55}, after_estimates={"a": 48},
    )
    by_key = {change.key: change for change in report.surges + report.drops}
    assert by_key["b"].before == 55 and by_key["b"].delta == 5
    assert by_key["a"].after == 48 and by_key["a"].delta == -2


def test_report_round_trips_through_json():
    report = diff_rankings(
        [("a", 5), ((1, 2), 3)], [("a", 9)], earlier_epoch=3, later_epoch=4
    )
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["earlier_epoch"] == 3
    assert payload["surges"][0]["key"] == "a"
    # Non-scalar keys are repr()'d so the schema stays JSON-clean.
    assert payload["vanished_keys"] == [repr((1, 2))]


def test_identical_rankings_report_nothing():
    ranking = [("a", 9), ("b", 5)]
    report = diff_rankings(ranking, ranking)
    assert isinstance(report, ChangeReport)
    assert not report.has_changes
    assert report.churn == 0.0

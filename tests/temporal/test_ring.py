"""EpochRing retention: budgets, eviction order, pinned lookups."""

from __future__ import annotations

import time

import pytest

from repro.serve.errors import EpochGoneError
from repro.serve.snapshots import EpochSnapshot
from repro.sketches.registry import build_sketch
from repro.temporal import EpochRing


def snap(epoch_id: int, items: int = 0) -> EpochSnapshot:
    return EpochSnapshot(
        epoch_id=epoch_id,
        items=items,
        sketch=build_sketch("CM_fast", 8192.0, seed=0),
        published_at=time.perf_counter(),
    )


def test_count_budget_evicts_oldest():
    ring = EpochRing(max_epochs=3)
    for epoch_id in range(5):
        ring.offer(snap(epoch_id))
    assert ring.epochs == (2, 3, 4)
    assert ring.evictions == 2
    assert len(ring) == 3


def test_get_returns_the_offered_snapshot():
    ring = EpochRing(max_epochs=4)
    offered = [snap(i) for i in range(4)]
    for snapshot in offered:
        ring.offer(snapshot)
    for snapshot in offered:
        assert ring.get(snapshot.epoch_id) is snapshot
        assert snapshot.epoch_id in ring


def test_evicted_epoch_raises_typed_error_with_bounds():
    ring = EpochRing(max_epochs=2)
    for epoch_id in range(4):
        ring.offer(snap(epoch_id))
    with pytest.raises(EpochGoneError) as caught:
        ring.get(0)
    assert caught.value.epoch_id == 0
    assert caught.value.oldest == 2
    assert caught.value.newest == 3
    assert not caught.value.retryable
    assert "not ring-resident" in str(caught.value)


def test_future_epoch_is_also_gone():
    ring = EpochRing(max_epochs=2)
    ring.offer(snap(0))
    with pytest.raises(EpochGoneError):
        ring.get(99)


def test_out_of_order_offer_rejected():
    ring = EpochRing(max_epochs=4)
    ring.offer(snap(3))
    with pytest.raises(ValueError):
        ring.offer(snap(3))
    with pytest.raises(ValueError):
        ring.offer(snap(1))


def test_byte_budget_evicts_but_keeps_newest():
    one = snap(0)
    per_epoch = one.sketch.memory_bytes()
    ring = EpochRing(max_epochs=100, max_bytes=per_epoch * 2.5)
    ring.offer(one)
    for epoch_id in range(1, 6):
        ring.offer(snap(epoch_id))
    assert len(ring) == 2  # 2 fit the byte budget, 3rd would exceed
    assert ring.newest.epoch_id == 5
    # A budget smaller than a single epoch still retains the newest.
    tight = EpochRing(max_epochs=100, max_bytes=1.0)
    tight.offer(snap(0))
    tight.offer(snap(1))
    assert len(tight) == 1
    assert tight.newest.epoch_id == 1


def test_stats_shape():
    ring = EpochRing(max_epochs=3)
    for epoch_id in range(4):
        ring.offer(snap(epoch_id))
    stats = ring.stats()
    assert stats["resident_epochs"] == [1, 2, 3]
    assert stats["oldest_epoch"] == 1
    assert stats["newest_epoch"] == 3
    assert stats["max_epochs"] == 3
    assert stats["evictions"] == 1
    assert stats["retained_bytes"] > 0


def test_invalid_budgets_rejected():
    with pytest.raises(ValueError):
        EpochRing(max_epochs=0)
    with pytest.raises(ValueError):
        EpochRing(max_epochs=4, max_bytes=0.0)

"""Live resharding under ingest: placement must stay exact through surgery.

The invariant every test here pins: after any sequence of
split/merge/add/remove operations mid-stream, each partition's state is
bit-identical to a *static* ``partitions``-shard fleet fed the same stream
(locally, a :class:`~repro.sketches.sharded.ShardedSketch` with the same
seed) — because the key->partition hash never moves, only the
partition->owner table does, behind an epoch fence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.ingest import (
    DynamicIngestCoordinator,
    run_dynamic_ingest,
)
from repro.distributed.transport import create_transport
from repro.distributed.wire import WireFormatError
from repro.sketches.base import UnmergeableSketchError
from repro.sketches.registry import build_sketch
from repro.sketches.sharded import EpochRouter, ShardedSketch

MEMORY = 32 * 1024
SEED = 3
CHUNK = 128


def zipf_items(count=2500, seed=7, universe=400):
    rng = np.random.default_rng(seed)
    keys = rng.zipf(1.3, count) % universe
    return [(int(key), 1) for key in keys]


def static_reference(algorithm, items, partitions, chunk=CHUNK):
    """The static fleet: one local shard per partition, same seed."""
    local = ShardedSketch(
        [build_sketch(algorithm, MEMORY, seed=SEED) for _ in range(partitions)],
        seed=SEED,
    )
    for start in range(0, len(items), chunk):
        piece = items[start : start + chunk]
        local.insert_batch([key for key, _ in piece], [value for _, value in piece])
    return local


def states_equal(sketch_a, sketch_b):
    state_a, state_b = sketch_a.state_snapshot(), sketch_b.state_snapshot()
    return set(state_a) == set(state_b) and all(
        np.array_equal(state_a[name], state_b[name]) for name in state_a
    )


def assert_bit_identical(result, items):
    reference = static_reference(result.algorithm, items, result.partitions)
    for partition in range(result.partitions):
        assert states_equal(
            result.partition_sketches[partition], reference.shards[partition]
        ), f"partition {partition} diverged from the static fleet"


# -- EpochRouter ------------------------------------------------------------


def test_router_reassign_bumps_epoch_and_moves_exactly_one_partition():
    router = EpochRouter.round_robin(SEED, partitions=6, workers=2)
    assert router.epoch == 0
    assert router.partitions_of(0) == (0, 2, 4)
    assert router.reassign(2, 1) == 1
    assert router.partitions_of(0) == (0, 4)
    assert router.partitions_of(1) == (1, 2, 3, 5)
    assert router.load() == {0: 2, 1: 4}
    with pytest.raises(ValueError):
        router.reassign(99, 0)


def test_router_placement_matches_local_sharding():
    """route() must partition a batch exactly like ShardedSketch does."""
    router = EpochRouter.round_robin(SEED, partitions=4, workers=4)
    local = ShardedSketch(
        [build_sketch("CM_fast", MEMORY, seed=SEED) for _ in range(4)], seed=SEED
    )
    keys = [key for key, _ in zipf_items(600)]
    local.insert_batch(keys, 1)
    from repro.hashing import EncodedKeyBatch

    routed_counts = {
        partition: positions.size
        for _, partition, positions in router.route(EncodedKeyBatch(keys))
    }
    for partition in range(4):
        assert routed_counts.get(partition, 0) == int(local.items_per_shard[partition])


# -- reshard operations under live ingest -----------------------------------


def test_no_op_run_matches_static_fleet():
    items = zipf_items()
    result = run_dynamic_ingest(
        "CM_fast", MEMORY, items, workers=2, partitions=6,
        transport="inproc", chunk_size=CHUNK, seed=SEED,
    )
    assert result.epoch == 0
    assert result.total_items == len(items)
    assert result.total_lost == 0
    assert_bit_identical(result, items)


@pytest.mark.parametrize("algorithm", ["CM_fast", "CU_fast", "Count"])
def test_split_merge_add_remove_under_load_is_bit_identical(algorithm):
    items = zipf_items()
    actions = {
        3: lambda c: c.split_worker(0),
        7: lambda c: c.add_worker(),
        9: lambda c: c.move_partition(0, 1),
        12: lambda c: c.merge_workers(2, 1),
        15: lambda c: c.remove_worker(3),
    }
    result = run_dynamic_ingest(
        algorithm, MEMORY, items, workers=2, partitions=6,
        transport="inproc", chunk_size=CHUNK, seed=SEED, actions=actions,
    )
    assert result.total_items == len(items)
    assert result.total_lost == 0
    assert result.epoch > 0
    assert result.handoffs, "fleet surgery must record its handoffs"
    assert_bit_identical(result, items)


def test_merged_result_matches_single_node_for_exact_families():
    items = zipf_items()
    result = run_dynamic_ingest(
        "CM_fast", MEMORY, items, workers=2, partitions=4,
        transport="inproc", chunk_size=CHUNK, seed=SEED,
        actions={5: lambda c: c.split_worker(0)},
    )
    single = build_sketch("CM_fast", MEMORY, seed=SEED)
    for start in range(0, len(items), CHUNK):
        piece = items[start : start + CHUNK]
        single.insert_batch([key for key, _ in piece], [value for _, value in piece])
    assert states_equal(result.merged, single)


def test_sharded_view_answers_routed_queries():
    items = zipf_items()
    result = run_dynamic_ingest(
        "CM_fast", MEMORY, items, workers=2, partitions=4,
        transport="inproc", chunk_size=CHUNK, seed=SEED,
        actions={4: lambda c: c.split_worker(1)},
    )
    sharded = result.sharded()
    reference = static_reference("CM_fast", items, 4)
    keys = sorted({key for key, _ in items})
    assert sharded.query_batch(keys).tolist() == reference.query_batch(keys).tolist()
    assert int(sharded.items_per_shard.sum()) == len(items)


def test_handoff_records_carry_latency_and_lineage():
    items = zipf_items(1200)
    result = run_dynamic_ingest(
        "CM_fast", MEMORY, items, workers=2, partitions=4,
        transport="inproc", chunk_size=CHUNK, seed=SEED,
        actions={4: lambda c: c.move_partition(1, 0)},
    )
    (record,) = result.handoffs
    assert record["partition"] == 1
    assert record["to_worker"] == 0
    assert record["from_worker"] == 1
    assert record["seconds"] >= 0.0
    assert record["epoch"] == result.epoch == 1


def test_empty_worker_merge_and_double_surgery():
    """Surgery on empty workers and repeated moves must stay exact."""
    items = zipf_items(1500)
    def churn(coordinator):
        new = coordinator.add_worker()
        coordinator.merge_workers(new, 0)  # immediately fold the empty worker
    result = run_dynamic_ingest(
        "CM_fast", MEMORY, items, workers=2, partitions=4,
        transport="inproc", chunk_size=CHUNK, seed=SEED,
        actions={2: churn, 6: churn},
    )
    assert_bit_identical(result, items)


# -- coordinator guard rails -------------------------------------------------


def test_coordinator_rejects_bad_topologies():
    with pytest.raises(ValueError):
        DynamicIngestCoordinator(
            "CM_fast", MEMORY, workers=4, transport=create_transport("inproc"),
            partitions=2,
        )
    with pytest.raises(ValueError):
        DynamicIngestCoordinator(
            "CM_fast", MEMORY, workers=1, transport=create_transport("inproc"),
            credit_limit=0,
        )
    with pytest.raises(UnmergeableSketchError):
        DynamicIngestCoordinator(
            "Elastic", MEMORY, workers=1, transport=create_transport("inproc")
        )


def test_move_to_dead_or_unknown_worker_rejected():
    coordinator = DynamicIngestCoordinator(
        "CM_fast", MEMORY, workers=2, transport=create_transport("inproc"),
        partitions=4, seed=SEED,
    )
    try:
        with pytest.raises(ValueError):
            coordinator.move_partition(0, 7)
        coordinator.remove_worker(1)
        with pytest.raises(ValueError):
            coordinator.move_partition(0, 1)  # retired workers are not targets
        with pytest.raises(ValueError):
            coordinator.remove_worker(1)  # cannot retire twice
        with pytest.raises(ValueError):
            coordinator.merge_workers(0, 0)
    finally:
        coordinator.shutdown()


def test_worker_rejects_stale_handoff_and_double_ownership():
    """The epoch fence on the worker side: stale or duplicate handoffs are
    protocol violations, not silently-adopted state."""
    from repro.distributed.ingest import DynamicWorkerConfig, dynamic_worker_main
    from repro.distributed.transport import QueueChannel
    from repro.distributed.wire import (
        MSG_CONFIG,
        MSG_HANDOFF,
        encode_frame,
        encode_handoff,
    )
    import threading

    for stale_epoch, partition in ((0, 3), (5, 0)):  # stale epoch / owned partition
        ours, theirs = QueueChannel.pair()
        config = DynamicWorkerConfig(
            "CM_fast", MEMORY, SEED, worker_id=0, partitions=4, owned=(0, 2),
            epoch=2,
        )
        errors = []

        def run():
            try:
                dynamic_worker_main(theirs)
            except WireFormatError as error:
                errors.append(error)

        thread = threading.Thread(target=run)
        thread.start()
        ours.send(encode_frame(MSG_CONFIG, config.to_payload()))
        state = build_sketch("CM_fast", MEMORY, seed=SEED).state_snapshot()
        ours.send(
            encode_frame(
                MSG_HANDOFF,
                encode_handoff(stale_epoch, partition, state, "CM_fast", {}),
            )
        )
        thread.join(timeout=10)
        assert errors, "worker must reject the hostile handoff loudly"

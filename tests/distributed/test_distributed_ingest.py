"""End-to-end distributed ingest: the acceptance contract of the subsystem.

For every transport backend and 2+ workers:

* **CM/Count** — the collector's tree-merged sketch is *bit-identical* to a
  single-node sketch fed the whole stream (tables compared, not just a
  query projection).
* **CU** — per-shard states are exact (the rebuilt ShardedSketch answers
  every routed query bit-identically to local sharded ingest); the merge
  carries CU's documented upper-bound semantics: never below the true value
  sums, never below the routed answers.
* Key->worker placement equals the local ``ShardedSketch`` partition, so
  the runner's ``transport`` knob can never change a result.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.distributed import run_distributed_ingest, tree_merge
from repro.distributed.ingest import IngestCoordinator, WorkerConfig, worker_main
from repro.distributed.transport import QueueChannel, create_transport
from repro.distributed.wire import (
    MSG_CONFIG,
    MSG_SNAPSHOT_REQUEST,
    WireFormatError,
    encode_frame,
)
from repro.experiments.runner import ExperimentSettings, run_sketch
from repro.sketches.base import UnmergeableSketchError
from repro.sketches.registry import build_sketch
from repro.sketches.sharded import ShardedSketch
from repro.streams.synthetic import zipf_stream

MEMORY = 8192
SEED = 2
TRANSPORTS = ("inproc", "pipe", "tcp")


def mixed_items(seed: int, count: int = 900, universe: int = 200):
    """A weighted stream mixing int and string keys (exercises both wire modes)."""
    rng = random.Random(seed)
    items = []
    for _ in range(count):
        key: object = rng.randrange(universe)
        if rng.random() < 0.25:
            key = f"flow-{rng.randrange(universe // 4)}"
        items.append((key, rng.randrange(1, 4)))
    return items


def query_keys(items):
    present = sorted({key for key, _ in items}, key=str)
    return present + ["absent", 10**9]


@pytest.mark.parametrize("transport", TRANSPORTS)
@pytest.mark.parametrize("name", ["CM_fast", "Count"])
def test_merged_bit_identical_to_single_node(name, transport):
    items = mixed_items(3)
    result = run_distributed_ingest(
        name, MEMORY, items, workers=3, transport=transport, chunk_size=128, seed=SEED
    )
    single = build_sketch(name, MEMORY, seed=SEED)
    for key, value in items:
        single.insert(key, value)
    assert (result.merged._tables == single._tables).all()
    keys = query_keys(items)
    assert result.merged.query_batch(keys).tolist() == single.query_batch(keys).tolist()


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_cu_upper_bound_semantics(transport):
    items = mixed_items(5)
    result = run_distributed_ingest(
        "CU_fast", MEMORY, items, workers=3, transport=transport, chunk_size=128, seed=SEED
    )
    counts: dict = {}
    for key, value in items:
        counts[key] = counts.get(key, 0) + value
    keys = query_keys(items)
    merged = result.merged.query_batch(keys)
    routed = result.sharded().query_batch(keys)
    truth = np.asarray([counts.get(key, 0) for key in keys])
    assert (merged >= truth).all(), "CU merge must never underestimate"
    assert (merged >= routed).all(), "CU merge must dominate the routed answers"


@pytest.mark.parametrize("transport", TRANSPORTS)
@pytest.mark.parametrize("name", ["CM_fast", "CU_fast", "Count"])
def test_remote_shards_equal_local_sharding(name, transport):
    """Worker states are bit-identical to local ShardedSketch shards."""
    items = mixed_items(7)
    result = run_distributed_ingest(
        name, MEMORY, items, workers=3, transport=transport, chunk_size=64, seed=SEED
    )
    local = ShardedSketch.from_registry(name, MEMORY, 3, seed=SEED)
    for start in range(0, len(items), 64):
        chunk = items[start : start + 64]
        local.insert_batch([k for k, _ in chunk], [v for _, v in chunk])

    assert list(result.items_per_worker) == local.items_per_shard.tolist()
    keys = query_keys(items)
    remote = result.sharded()
    assert remote.query_batch(keys).tolist() == local.query_batch(keys).tolist()
    # Shard-by-shard state equality, not just the routed projection.
    for remote_shard, local_shard in zip(result.shard_sketches, local.shards):
        snapshot_remote = remote_shard.state_snapshot()
        snapshot_local = local_shard.state_snapshot()
        assert (snapshot_remote["tables"] == snapshot_local["tables"]).all()


def test_single_worker_matches_monolithic():
    """workers=1 degenerates to single-node ingest over a wire."""
    items = mixed_items(9)
    result = run_distributed_ingest(
        "CM_fast", MEMORY, items, workers=1, transport="inproc", chunk_size=100, seed=SEED
    )
    single = build_sketch("CM_fast", MEMORY, seed=SEED)
    for key, value in items:
        single.insert(key, value)
    assert (result.merged._tables == single._tables).all()


def test_empty_stream():
    result = run_distributed_ingest(
        "Count", MEMORY, [], workers=2, transport="inproc", seed=SEED
    )
    assert result.total_items == 0
    assert result.merged.query(1) == 0


def test_worker_meta_reports_ingest_stats():
    items = mixed_items(11)
    result = run_distributed_ingest(
        "CM_fast", MEMORY, items, workers=2, transport="inproc", chunk_size=50, seed=SEED
    )
    assert [meta["items"] for meta in result.worker_metas] == list(result.items_per_worker)
    assert [meta["shard_id"] for meta in result.worker_metas] == [0, 1]
    assert all(meta["hash_calls"] > 0 for meta in result.worker_metas)
    assert result.bytes_sent > 0 and result.bytes_received > 0


def test_unmergeable_family_rejected():
    with pytest.raises(UnmergeableSketchError):
        run_distributed_ingest("Elastic", MEMORY, [], workers=2, transport="inproc")


def test_coordinator_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        IngestCoordinator("CM_fast", MEMORY, 0, create_transport("inproc"))


def test_tree_merge_orders_are_equivalent():
    """Tree reduction equals sequential folding for the additive families."""
    streams = [mixed_items(seed, count=300) for seed in range(5)]
    sketches = []
    for items in streams:
        sketch = build_sketch("Count", MEMORY, seed=SEED)
        for key, value in items:
            sketch.insert(key, value)
        sketches.append(sketch)

    import copy

    tree = tree_merge([copy.deepcopy(s) for s in sketches])
    sequential = copy.deepcopy(sketches[0])
    for other in sketches[1:]:
        sequential.merge(other)
    assert (tree._tables == sequential._tables).all()

    with pytest.raises(ValueError):
        tree_merge([])


def test_worker_main_rejects_batch_before_config():
    collector, worker = QueueChannel.pair()
    from repro.distributed.wire import MSG_BATCH, encode_batch

    collector.send(encode_frame(MSG_BATCH, encode_batch([1, 2])))
    collector.close()
    with pytest.raises(WireFormatError):
        worker_main(worker)


def test_worker_main_answers_snapshot_over_plain_channel():
    """worker_main drives correctly without any transport scaffolding."""
    collector, worker_side = QueueChannel.pair()
    config = WorkerConfig("CM_fast", MEMORY, SEED, shard_id=0, shards=1)
    collector.send(encode_frame(MSG_CONFIG, config.to_payload()))
    collector.send(encode_frame(MSG_SNAPSHOT_REQUEST))
    collector.close()
    worker_main(worker_side)
    frame = collector.recv()
    assert frame is not None


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_runner_transport_knob_is_bit_identical(transport):
    """ExperimentSettings.transport never changes an accuracy report."""
    stream = zipf_stream(4000, skew=1.1, seed=6)
    local = run_sketch(
        "CM_fast", MEMORY, stream, ExperimentSettings(seed=SEED, shards=2, batch_size=512)
    )
    remote = run_sketch(
        "CM_fast", MEMORY, stream,
        ExperimentSettings(seed=SEED, shards=2, batch_size=512, transport=transport),
    )
    assert local.report == remote.report


def test_runner_transport_falls_back_for_unmergeable():
    stream = zipf_stream(2000, skew=1.1, seed=6)
    local = run_sketch(
        "Ours", MEMORY, stream, ExperimentSettings(seed=SEED, shards=2, batch_size=512)
    )
    remote = run_sketch(
        "Ours", MEMORY, stream,
        ExperimentSettings(seed=SEED, shards=2, batch_size=512, transport="inproc"),
    )
    assert local.report == remote.report

"""Channel semantics every transport backend must share.

The ingest layer only ever sees ``send``/``recv``/``close``, so the three
backends are tested through one harness: frames arrive whole, in order,
byte-identical; EOF surfaces as ``None``; byte counters track both
directions.  An echo worker stands in for the ingest loop.
"""

from __future__ import annotations

import pytest

from repro.distributed.transport import (
    QueueChannel,
    TcpTransport,
    connect_worker,
    create_transport,
)
from repro.distributed.wire import MSG_BATCH, MSG_SHUTDOWN, decode_frame, encode_frame

FRAMES = [
    encode_frame(MSG_BATCH, b"alpha"),
    encode_frame(MSG_BATCH, b""),
    encode_frame(MSG_BATCH, bytes(range(256)) * 40),
]


def echo_worker(channel):
    """Echo every frame until shutdown — a minimal stand-in for worker_main."""
    while True:
        frame = channel.recv()
        if frame is None:
            break
        msg_type, payload = decode_frame(frame)
        if msg_type == MSG_SHUTDOWN:
            break
        channel.send(frame)


@pytest.mark.parametrize("name", ["inproc", "pipe", "tcp"])
def test_frames_echo_in_order(name):
    with create_transport(name) as transport:
        channels = transport.launch(echo_worker, 2)
        assert len(channels) == 2
        for channel in channels:
            for frame in FRAMES:
                channel.send(frame)
            for frame in FRAMES:
                assert channel.recv() == frame
            channel.send(encode_frame(MSG_SHUTDOWN))
    transport.join(timeout=10)


@pytest.mark.parametrize("name", ["inproc", "pipe", "tcp"])
def test_eof_after_worker_exit(name):
    with create_transport(name) as transport:
        (channel,) = transport.launch(echo_worker, 1)
        channel.send(encode_frame(MSG_SHUTDOWN))
        transport.join(timeout=10)
        assert channel.recv() is None
        assert channel.recv() is None  # EOF is sticky


@pytest.mark.parametrize("name", ["inproc", "pipe", "tcp"])
def test_byte_counters(name):
    with create_transport(name) as transport:
        (channel,) = transport.launch(echo_worker, 1)
        frame = FRAMES[0]
        channel.send(frame)
        assert channel.recv() == frame
        channel.send(encode_frame(MSG_SHUTDOWN))
        assert channel.bytes_sent == len(frame) + len(encode_frame(MSG_SHUTDOWN))
        assert channel.bytes_received == len(frame)


def test_queue_channel_pair_is_symmetric():
    left, right = QueueChannel.pair()
    left.send(b"ping")
    assert right.recv() == b"ping"
    right.send(b"pong")
    assert left.recv() == b"pong"
    left.close()
    assert right.recv() is None


def test_tcp_accepts_external_workers():
    """self_hosted=False only accepts; workers dial in from outside."""
    import threading
    import time

    transport = TcpTransport(port=0, self_hosted=False)
    results = []

    def external_worker():
        # The listener is created inside launch(); wait for the port.
        while transport.port == 0:
            time.sleep(0.005)
        channel = connect_worker("127.0.0.1", transport.port)
        echo_worker(channel)
        results.append("done")

    dialer = threading.Thread(target=external_worker, daemon=True)
    dialer.start()
    (channel,) = transport.launch(echo_worker, 1)
    channel.send(FRAMES[0])
    assert channel.recv() == FRAMES[0]
    channel.send(encode_frame(MSG_SHUTDOWN))
    dialer.join(timeout=10)
    transport.close()
    assert results == ["done"]


def test_tcp_accept_timeout_releases_the_port():
    """A launch that times out waiting for workers must not leak the listener."""
    import socket

    transport = TcpTransport(port=0, self_hosted=False, accept_timeout=0.2)
    with pytest.raises(OSError):
        transport.launch(echo_worker, 1)  # nobody dials in
    # The port is free again: a fresh server can bind it immediately.
    rebind = socket.create_server(("127.0.0.1", transport.port))
    rebind.close()


def test_create_transport_rejects_unknown_name():
    with pytest.raises(ValueError):
        create_transport("carrier-pigeon")

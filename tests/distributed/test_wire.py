"""Wire-format round-trips: serialize -> deserialize must be the identity.

Property-tested (Hypothesis) across key dtypes — small ints (the dense
uint32 mode), large/negative ints, strings, bytes, and mixtures (the tagged
mode) — plus empty batches, every value mode, and the state payloads of
every mergeable sketch family.  Malformed frames must fail loudly with
:class:`WireFormatError`, never decode to garbage.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import wire
from repro.distributed.wire import (
    MSG_BATCH,
    WireFormatError,
    decode_batch,
    decode_config,
    decode_frame,
    decode_state,
    encode_batch,
    encode_config,
    encode_frame,
    encode_state,
)
from repro.hashing import EncodedKeyBatch
from repro.sketches.registry import build_sketch, mergeable_names

# Key strategies mirror the supported stream key types.
small_ints = st.integers(min_value=0, max_value=2**31 - 1)
any_ints = st.integers(min_value=-(2**80), max_value=2**80)
texts = st.text(max_size=24)
blobs = st.binary(max_size=24)
mixed_keys = st.one_of(any_ints, texts, blobs)


def roundtrip(keys, values=None):
    batch, decoded_values = decode_batch(encode_batch(keys, values))
    return list(batch.keys), decoded_values


@given(st.lists(small_ints, max_size=64))
@settings(max_examples=60, deadline=None)
def test_small_int_batches_roundtrip(keys):
    decoded, values = roundtrip(keys)
    assert decoded == keys
    assert values.tolist() == [1] * len(keys)


@given(st.lists(mixed_keys, max_size=64))
@settings(max_examples=60, deadline=None)
def test_mixed_key_batches_roundtrip(keys):
    decoded, _ = roundtrip(keys)
    assert decoded == keys
    # Type-exact: 1 (int) must not come back as "1" (str) or b"\x01".
    assert [type(key) for key in decoded] == [type(key) for key in keys]


@given(st.lists(st.tuples(mixed_keys, st.integers(min_value=1, max_value=2**40)), max_size=48))
@settings(max_examples=60, deadline=None)
def test_key_value_batches_roundtrip(pairs):
    keys = [key for key, _ in pairs]
    values = [value for _, value in pairs]
    decoded_keys, decoded_values = roundtrip(keys, values)
    assert decoded_keys == keys
    assert decoded_values.tolist() == values
    assert decoded_values.dtype == np.int64


def test_empty_batch_roundtrips():
    decoded, values = roundtrip([])
    assert decoded == []
    assert values.shape == (0,)


def test_uniform_and_scalar_values_roundtrip():
    _, values = roundtrip([1, 2, 3], 7)
    assert values.tolist() == [7, 7, 7]
    # A constant array degrades to the compact uniform mode transparently.
    _, values = roundtrip([1, 2, 3], [5, 5, 5])
    assert values.tolist() == [5, 5, 5]


def test_decoded_batch_reuses_transmitted_encodings():
    """Tagged-mode decode must seed the batch with the wire encodings."""
    keys = ["flow-a", b"raw", -17, 2**40]
    source = EncodedKeyBatch(keys)
    batch, _ = decode_batch(encode_batch(source))
    assert batch._encoded == source.encoded


def test_routed_subbatch_roundtrips():
    """The coordinator's take() sub-batches serialize like fresh batches."""
    parent = EncodedKeyBatch([5, "x", b"y", 9, 2**50])
    sub = parent.take(np.asarray([0, 2, 4]))
    decoded, _ = roundtrip(sub)
    assert decoded == [5, b"y", 2**50]


def test_value_length_mismatch_rejected():
    with pytest.raises(WireFormatError):
        encode_batch([1, 2, 3], [1, 2])


def test_unsupported_key_type_rejected():
    with pytest.raises(WireFormatError):
        encode_batch([1.5])


@pytest.mark.parametrize("name", sorted(mergeable_names()))
def test_sketch_state_roundtrips(name):
    """State payloads restore into replicas that answer queries identically."""
    donor = build_sketch(name, 4096, seed=3)
    items = [(key % 37, 1 + key % 5) for key in range(500)]
    donor.insert_batch([key for key, _ in items], [value for _, value in items])

    payload = encode_state(donor.state_snapshot(), name, {"items": len(items)})
    state, algorithm, meta = decode_state(payload)
    assert algorithm == name
    assert meta == {"items": len(items)}

    replica = build_sketch(name, 4096, seed=3)
    replica.state_restore(state)
    keys = sorted({key for key, _ in items}) + [999_999]
    assert replica.query_batch(keys).tolist() == donor.query_batch(keys).tolist()


def test_state_snapshot_is_a_copy():
    sketch = build_sketch("CM_fast", 4096, seed=0)
    sketch.insert(1, 5)
    snapshot = sketch.state_snapshot()
    sketch.insert(1, 5)
    replica = build_sketch("CM_fast", 4096, seed=0)
    replica.state_restore(snapshot)
    assert replica.query(1) == 5
    assert sketch.query(1) == 10


def test_state_restore_validates_shape():
    sketch = build_sketch("CM_fast", 4096, seed=0)
    with pytest.raises(ValueError):
        sketch.state_restore({"tables": np.zeros((1, 1), dtype=np.int64)})
    with pytest.raises(ValueError):
        sketch.state_restore({"wrong-name": np.zeros((1, 1), dtype=np.int64)})


def test_unmergeable_sketches_refuse_snapshots():
    from repro.sketches.base import UnmergeableSketchError

    sketch = build_sketch("Elastic", 4096, seed=0)
    with pytest.raises(UnmergeableSketchError):
        sketch.state_snapshot()
    with pytest.raises(UnmergeableSketchError):
        sketch.state_restore({})


def test_frame_roundtrip_and_validation():
    frame = encode_frame(MSG_BATCH, b"payload")
    assert decode_frame(frame) == (MSG_BATCH, b"payload")

    with pytest.raises(WireFormatError):
        encode_frame(99, b"")
    with pytest.raises(WireFormatError):
        decode_frame(b"XX" + frame[2:])  # bad magic
    with pytest.raises(WireFormatError):
        decode_frame(frame[:2] + bytes([wire.WIRE_VERSION + 1]) + frame[3:])  # version
    with pytest.raises(WireFormatError):
        decode_frame(frame[:-2])  # truncated payload
    with pytest.raises(WireFormatError):
        decode_frame(frame[: wire.FRAME_HEADER_SIZE - 1])  # truncated header


@given(st.binary(max_size=64))
@settings(max_examples=60, deadline=None)
def test_malformed_batch_payloads_never_crash(payload):
    """Arbitrary bytes either decode cleanly or raise WireFormatError."""
    try:
        batch, values = decode_batch(payload)
    except WireFormatError:
        return
    assert len(batch) == len(values)


def test_truncated_state_payloads_rejected():
    payload = encode_state({"tables": np.arange(6).reshape(2, 3)}, "CM_fast", {})
    with pytest.raises(WireFormatError):
        decode_state(payload[:-4])
    with pytest.raises(WireFormatError):
        decode_state(payload + b"extra")
    with pytest.raises(WireFormatError):
        decode_state(b"\x00\x00")


def test_structurally_invalid_state_headers_rejected():
    """Valid JSON with the wrong shape must still raise WireFormatError."""
    import json
    import struct

    def payload_for(header: dict) -> bytes:
        blob = json.dumps(header).encode("utf-8")
        return struct.pack(">I", len(blob)) + blob

    for header in (
        {},  # no arrays/algorithm/meta at all
        {"algorithm": "CM_fast", "meta": {}},  # missing arrays
        {"algorithm": "CM_fast", "meta": {}, "arrays": [{}]},  # entry missing keys
        {"algorithm": "CM_fast", "meta": {},
         "arrays": [{"name": "t", "dtype": "not-a-dtype", "shape": [1]}]},
    ):
        with pytest.raises(WireFormatError):
            decode_state(payload_for(header))


def test_oversized_frames_rejected_at_both_ends():
    """The 64 MiB payload bound holds on encode and on header parse.

    The parse side is the hostile one: a corrupt or adversarial header
    declaring an absurd length must fail before any buffer is allocated
    or any payload byte is awaited.
    """
    import struct

    with pytest.raises(WireFormatError, match="bound"):
        encode_frame(MSG_BATCH, bytes(wire.MAX_PAYLOAD_BYTES + 1))

    hostile = wire._FRAME_HEADER.pack(
        wire.MAGIC, wire.WIRE_VERSION, MSG_BATCH, wire.MAX_PAYLOAD_BYTES + 1
    )
    with pytest.raises(WireFormatError, match="bound"):
        wire.parse_frame_header(hostile)
    # The bound itself is fine: only the header is built here, no payload.
    msg_type, length = wire.parse_frame_header(
        struct.pack(">2sBBI", wire.MAGIC, wire.WIRE_VERSION, MSG_BATCH,
                    wire.MAX_PAYLOAD_BYTES)
    )
    assert (msg_type, length) == (MSG_BATCH, wire.MAX_PAYLOAD_BYTES)


def test_busy_query_reply_round_trips():
    """v2 replies carry a status byte; BUSY replies carry no body."""
    from repro.distributed.wire import (
        QUERY_KEYS,
        STATUS_BUSY,
        STATUS_OK,
        decode_query_response,
        encode_query_response,
    )

    busy = decode_query_response(
        encode_query_response(42, QUERY_KEYS, 7, status=STATUS_BUSY)
    )
    assert (busy.request_id, busy.kind, busy.epoch_id) == (42, QUERY_KEYS, 7)
    assert busy.status == STATUS_BUSY
    assert busy.estimates is None and busy.keys is None and busy.stats is None

    ok = decode_query_response(
        encode_query_response(42, QUERY_KEYS, 7, estimates=[1, 2])
    )
    assert ok.status == STATUS_OK
    assert ok.estimates.tolist() == [1, 2]

    # A BUSY reply must not smuggle a body, and unknown statuses must fail.
    with pytest.raises(WireFormatError):
        encode_query_response(1, QUERY_KEYS, 0, estimates=[1], status=STATUS_BUSY)
    busy_frame = encode_query_response(1, QUERY_KEYS, 0, status=STATUS_BUSY)
    with pytest.raises(WireFormatError):
        decode_query_response(busy_frame + b"x")  # trailing bytes after BUSY
    corrupt = bytearray(busy_frame)
    corrupt[5] = 99  # the status byte of the >IBBQ header
    with pytest.raises(WireFormatError):
        decode_query_response(bytes(corrupt))


def test_config_roundtrip_and_validation():
    config = {"algorithm": "CM_fast", "memory_bytes": 4096.0, "shard_id": 1}
    assert decode_config(encode_config(config)) == config
    with pytest.raises(WireFormatError):
        decode_config(b"\xff\xfe")
    with pytest.raises(WireFormatError):
        decode_config(b"[1, 2]")


# ---------------------------------------------------------------------------
# v3 dynamic-protocol frames: heartbeat / handoff / credit / routed batches.
# Same hostile-input bar as the v2 query frames — round-trip identity, and
# truncated, oversized, trailing-garbage, and wrong-epoch payloads must all
# raise WireFormatError, never decode to something plausible.


def test_heartbeat_roundtrip_and_epoch_fence():
    from repro.distributed.wire import decode_heartbeat, encode_heartbeat

    assert decode_heartbeat(encode_heartbeat(7, 3)) == (7, 3)
    assert decode_heartbeat(encode_heartbeat(7, 3), expected_epoch=3) == (7, 3)
    with pytest.raises(WireFormatError, match="epoch"):
        decode_heartbeat(encode_heartbeat(7, 3), expected_epoch=4)
    with pytest.raises(WireFormatError):
        decode_heartbeat(encode_heartbeat(7, 3)[:-1])  # truncated
    with pytest.raises(WireFormatError):
        decode_heartbeat(encode_heartbeat(7, 3) + b"\x00")  # trailing


def test_heartbeat_ack_roundtrip_and_validation():
    from repro.distributed.wire import decode_heartbeat_ack, encode_heartbeat_ack

    payload = encode_heartbeat_ack(9, 2, 1_000_000, stale_dropped=4)
    assert decode_heartbeat_ack(payload) == (9, 2, 1_000_000, 4)
    with pytest.raises(WireFormatError, match="epoch"):
        decode_heartbeat_ack(payload, expected_epoch=1)
    with pytest.raises(WireFormatError):
        decode_heartbeat_ack(payload[:-2])
    with pytest.raises(WireFormatError):
        decode_heartbeat_ack(payload + b"xx")


def test_credit_roundtrip_and_validation():
    from repro.distributed.wire import decode_credit, encode_credit

    assert decode_credit(encode_credit(5, 2)) == (5, 2)
    with pytest.raises(WireFormatError):
        encode_credit(5, 0)  # a credit grant must free at least one slot
    with pytest.raises(WireFormatError):
        decode_credit(encode_credit(5, 1)[:-1])
    with pytest.raises(WireFormatError):
        decode_credit(encode_credit(5, 1) + b"\x00")


def test_routed_batch_roundtrip_and_epoch_fence():
    from repro.distributed.wire import decode_routed_batch, encode_routed_batch

    batch = EncodedKeyBatch([3, "flow", b"raw", 2**50])
    payload = encode_routed_batch(4, 11, batch, [1, 2, 3, 4])
    epoch, partition, decoded, values = decode_routed_batch(payload)
    assert (epoch, partition) == (4, 11)
    assert list(decoded.keys) == [3, "flow", b"raw", 2**50]
    assert values.tolist() == [1, 2, 3, 4]

    with pytest.raises(WireFormatError, match="epoch"):
        decode_routed_batch(payload, expected_epoch=3)
    with pytest.raises(WireFormatError):
        decode_routed_batch(payload[:6])  # header truncated mid-struct
    with pytest.raises(WireFormatError):
        decode_routed_batch(payload[:9])  # batch body truncated


def test_handoff_roundtrip_and_epoch_fence():
    from repro.distributed.wire import decode_handoff, encode_handoff

    donor = build_sketch("CM_fast", 4096, seed=3)
    donor.insert_batch(list(range(40)), [2] * 40)
    payload = encode_handoff(
        6, 2, donor.state_snapshot(), "CM_fast", {"items": 40}
    )
    epoch, partition, state, algorithm, meta = decode_handoff(payload)
    assert (epoch, partition, algorithm, meta) == (6, 2, "CM_fast", {"items": 40})
    replica = build_sketch("CM_fast", 4096, seed=3)
    replica.state_restore(state)
    assert replica.query_batch(list(range(40))).tolist() == donor.query_batch(
        list(range(40))
    ).tolist()

    with pytest.raises(WireFormatError, match="epoch"):
        decode_handoff(payload, expected_epoch=5)
    with pytest.raises(WireFormatError):
        decode_handoff(payload[:7])  # header truncated
    with pytest.raises(WireFormatError):
        decode_handoff(payload[:-3])  # state body truncated
    with pytest.raises(WireFormatError):
        decode_handoff(payload + b"junk")  # trailing bytes after the state


def test_handoff_ack_roundtrip_and_epoch_fence():
    from repro.distributed.wire import decode_handoff_ack, encode_handoff_ack

    assert decode_handoff_ack(encode_handoff_ack(6, 2)) == (6, 2)
    with pytest.raises(WireFormatError, match="epoch"):
        decode_handoff_ack(encode_handoff_ack(6, 2), expected_epoch=7)
    with pytest.raises(WireFormatError):
        decode_handoff_ack(encode_handoff_ack(6, 2)[:-1])
    with pytest.raises(WireFormatError):
        decode_handoff_ack(encode_handoff_ack(6, 2) + b"\x00")


def test_snapshot_request_roundtrip_and_validation():
    from repro.distributed.wire import (
        decode_snapshot_request,
        encode_snapshot_request,
    )

    assert decode_snapshot_request(encode_snapshot_request(3, 5)) == (3, 5, False)
    assert decode_snapshot_request(
        encode_snapshot_request(3, 5, release=True)
    ) == (3, 5, True)
    with pytest.raises(WireFormatError, match="epoch"):
        decode_snapshot_request(encode_snapshot_request(3, 5), expected_epoch=2)
    with pytest.raises(WireFormatError):
        decode_snapshot_request(encode_snapshot_request(3, 5)[:-1])
    # A release flag outside {0, 1} is corruption, not a boolean.
    corrupt = bytearray(encode_snapshot_request(3, 5))
    corrupt[-1] = 2
    with pytest.raises(WireFormatError):
        decode_snapshot_request(bytes(corrupt))


def test_oversized_handoff_frames_hit_the_frame_bound():
    """A handoff whose state exceeds the payload bound fails at encode_frame —
    the same 64 MiB ceiling every other frame type lives under."""
    from repro.distributed.wire import MSG_HANDOFF

    state = {"tables": np.zeros(wire.MAX_PAYLOAD_BYTES // 8 + 16, dtype=np.int64)}
    payload = wire.encode_handoff(1, 0, state, "CM_fast", {})
    with pytest.raises(WireFormatError, match="bound"):
        encode_frame(MSG_HANDOFF, payload)


@given(st.binary(max_size=48))
@settings(max_examples=60, deadline=None)
def test_malformed_dynamic_payloads_never_crash(payload):
    """Arbitrary bytes against every v3 decoder: clean decode or WireFormatError."""
    from repro.distributed.wire import (
        decode_credit,
        decode_handoff,
        decode_handoff_ack,
        decode_heartbeat,
        decode_heartbeat_ack,
        decode_routed_batch,
        decode_snapshot_request,
    )

    for decoder in (
        decode_heartbeat,
        decode_heartbeat_ack,
        decode_credit,
        decode_handoff_ack,
        decode_snapshot_request,
        decode_routed_batch,
        decode_handoff,
    ):
        try:
            decoder(payload)
        except WireFormatError:
            pass

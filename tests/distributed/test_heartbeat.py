"""Heartbeat liveness probing: hung workers are found, not waited on.

PR 8's failure detector caught workers whose *link* died (EOF, send
failure).  A worker that stays connected but stops answering — wedged in
a syscall, paging, livelocked — used to block the coordinator forever on
an unbounded ``recv``.  These tests pin the fix end to end: ``recv``
timeouts on every transport, the heartbeat timeout turning a deaf worker
into a normal recovery, and the wall-clock cadence gate that keeps probe
cost off the hot ingest path.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.distributed.ingest import DynamicIngestCoordinator, run_dynamic_ingest
from repro.distributed.transport import (
    ChannelTimeoutError,
    QueueChannel,
    create_transport,
)
from repro.streams.items import chunked

MEMORY = 8192
SEED = 3
PARTITIONS = 4


def stream_items(count=4000, seed=11):
    rng = np.random.default_rng(seed)
    return [(f"k{int(v) % 400}", 1) for v in rng.integers(0, 1 << 30, size=count)]


def drive(coordinator, items, chunk=512):
    for piece in chunked(items, chunk):
        coordinator.send_batch([k for k, _ in piece], [v for _, v in piece])


def states_equal(a, b):
    return set(a) == set(b) and all(
        np.array_equal(np.asarray(a[k]), np.asarray(b[k])) for k in a
    )


# -------------------------------------------------------------- recv timeout
def test_queue_channel_recv_timeout_is_typed():
    a, b = QueueChannel.pair()
    with pytest.raises(ChannelTimeoutError):
        a.recv(timeout=0.05)
    # The channel is still usable after a timeout — nothing was consumed.
    b.send(b"late")
    assert a.recv(timeout=1.0) == b"late"


@pytest.mark.parametrize("name", ["inproc", "pipe", "tcp"])
def test_recv_timeout_across_transports(name):
    def mute_worker(channel):
        while channel.recv() is not None:
            pass  # reads forever, never speaks — the hung-worker shape

    transport = create_transport(name)
    with transport:
        (channel,) = transport.launch(mute_worker, 1)
        start = time.monotonic()
        with pytest.raises(ChannelTimeoutError):
            channel.recv(timeout=0.2)
        assert time.monotonic() - start < 5.0


# ------------------------------------------------------------- construction
@pytest.mark.parametrize(
    "kwargs",
    [
        {"heartbeat_interval": 0},
        {"heartbeat_interval": -1.0},
        {"heartbeat_timeout": 0},
        {"heartbeat_timeout": -0.5},
    ],
)
def test_heartbeat_parameter_validation(kwargs):
    # Validation fires before any worker launches, so nothing leaks.
    with pytest.raises(ValueError, match="heartbeat"):
        DynamicIngestCoordinator(
            "CM_fast", MEMORY, 2, create_transport("inproc"),
            partitions=PARTITIONS, seed=SEED, **kwargs,
        )


# ------------------------------------------------------------------ cadence
def test_ping_probes_all_live_workers():
    coordinator = DynamicIngestCoordinator(
        "CM_fast", MEMORY, 2, create_transport("inproc"),
        partitions=PARTITIONS, seed=SEED,
    )
    try:
        assert coordinator.ping() == (0, 1)
        assert coordinator.heartbeat_rounds == 1
        drive(coordinator, stream_items(count=1000))
        assert coordinator.ping() == (0, 1)  # mid-stream rounds are fine too
        sketches, metas = coordinator.collect()
        assert sum(int(meta["items"]) for meta in metas) == 1000
    finally:
        coordinator.shutdown()


def test_maybe_ping_is_wall_clock_gated():
    coordinator = DynamicIngestCoordinator(
        "CM_fast", MEMORY, 2, create_transport("inproc"),
        partitions=PARTITIONS, seed=SEED, heartbeat_interval=0.05,
    )
    try:
        assert coordinator.maybe_ping() is None  # interval not yet elapsed
        time.sleep(0.06)
        assert coordinator.maybe_ping() == (0, 1)  # elapsed: a real round
        assert coordinator.maybe_ping() is None  # the round reset the clock
        assert coordinator.heartbeat_rounds == 1
    finally:
        coordinator.shutdown()


def test_maybe_ping_disabled_without_interval():
    coordinator = DynamicIngestCoordinator(
        "CM_fast", MEMORY, 2, create_transport("inproc"),
        partitions=PARTITIONS, seed=SEED,
    )
    try:
        time.sleep(0.01)
        assert coordinator.maybe_ping() is None
        assert coordinator.heartbeat_rounds == 0
    finally:
        coordinator.shutdown()


# ----------------------------------------------------------- deaf recovery
class DeafChannel:
    """A link whose peer is alive but wedged: sends vanish, acks never come.

    This is the failure the heartbeat *timeout* exists for — the channel
    itself reports nothing wrong (no EOF, no send error), it just never
    produces a frame.  ``recv`` honours its timeout; an unbounded ``recv``
    here would be the exact hang the feature removes, so it asserts.
    """

    def __init__(self, inner) -> None:
        self._inner = inner

    def send(self, frame: bytes) -> None:
        pass  # swallowed: the wedged worker never processes it

    def recv(self, timeout: float | None = None) -> bytes | None:
        if timeout is None:
            raise AssertionError(
                "unbounded recv on a deaf channel — the coordinator must "
                "probe hung workers with heartbeat_timeout"
            )
        time.sleep(min(timeout, 0.05))
        raise ChannelTimeoutError(f"no frame within {timeout}s")

    def close(self) -> None:
        self._inner.close()


def test_deaf_worker_recovered_by_heartbeat_timeout():
    """A hung (connected, silent) worker is recovered losslessly by ping().

    Half the stream lands, then worker 1 goes deaf.  The next heartbeat
    round must detect it within ``heartbeat_timeout``, re-place its
    partitions on the survivor with journal replay (lossless), and the
    final partitions must equal an uninterrupted run's bit for bit.
    """
    items = stream_items()
    half = len(items) // 2
    reference = run_dynamic_ingest(
        "CM_fast", MEMORY, items, workers=2, partitions=PARTITIONS, seed=SEED
    )

    coordinator = DynamicIngestCoordinator(
        "CM_fast", MEMORY, 2, create_transport("inproc"),
        partitions=PARTITIONS, seed=SEED, heartbeat_timeout=0.2,
    )
    try:
        drive(coordinator, items[:half])
        handle = coordinator._workers[1]
        handle.channel = DeafChannel(handle.channel)  # worker 1 wedges

        start = time.monotonic()
        alive = coordinator.ping()
        assert time.monotonic() - start < 5.0  # bounded, not a hang
        assert alive == (0,)

        (recovery,) = coordinator.recoveries
        assert recovery.worker_id == 1
        assert recovery.lost_items == 0  # journal replay made it lossless

        drive(coordinator, items[half:])
        sketches, metas = coordinator.collect()
        assert sum(int(meta["items"]) for meta in metas) == len(items)
        for partition, sketch in enumerate(sketches):
            assert states_equal(
                sketch.state_snapshot(),
                reference.partition_sketches[partition].state_snapshot(),
            ), f"partition {partition} diverged after deaf-worker recovery"
    finally:
        coordinator.shutdown()


def test_run_dynamic_ingest_threads_heartbeat_flags():
    items = stream_items(count=2000)
    result = run_dynamic_ingest(
        "CM_fast", MEMORY, items, workers=2, partitions=PARTITIONS, seed=SEED,
        heartbeat_interval=0.001,  # ping on essentially every chunk
        heartbeat_timeout=5.0,
    )
    assert result.total_items == len(items)
    assert not result.recoveries  # healthy fleet: probes found everyone alive

"""Property test: *arbitrary* reshard interleavings never move placement.

Hypothesis drives random sequences of {split, merge, add-worker,
remove-worker, move-partition} at random points of a random stream; the
final per-partition state must be bit-identical to a static
``partitions``-shard fleet for every mergeable family, and the tree-merged
result must keep each family's merge guarantee (CM/Count exact vs
single-node, CU a point-wise upper bound that still dominates truth).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.ingest import run_dynamic_ingest
from repro.sketches.registry import build_sketch
from repro.sketches.sharded import ShardedSketch

MEMORY = 16 * 1024
SEED = 3
CHUNK = 64
PARTITIONS = 6
WORKERS = 2


def make_ops(plan):
    """Translate drawn (chunk_index, op_code, a, b) tuples into actions.

    Op codes pick fleet surgery; the drawn integers select (and are wrapped
    onto) live workers at execution time, so every drawn plan is valid no
    matter what earlier operations did to the fleet.
    """

    def pick(coordinator, value):
        alive = coordinator.alive_workers()
        return alive[value % len(alive)]

    def apply(coordinator, op_code, a, b):
        alive = coordinator.alive_workers()
        if op_code == 0:
            coordinator.split_worker(pick(coordinator, a))
        elif op_code == 1 and len(alive) >= 2:
            source = pick(coordinator, a)
            into = pick(coordinator, a + 1 + b)
            if source != into:
                coordinator.merge_workers(source, into)
        elif op_code == 2:
            coordinator.add_worker()
        elif op_code == 3 and len(alive) >= 2:
            coordinator.remove_worker(pick(coordinator, a))
        elif op_code == 4:
            coordinator.move_partition(a % PARTITIONS, pick(coordinator, b))

    actions = {}
    for chunk_index, op_code, a, b in plan:
        queued = actions.setdefault(chunk_index, [])
        queued.append((op_code, a, b))

    return {
        chunk_index: (
            lambda c, ops=ops: [apply(c, *op) for op in ops]
        )
        for chunk_index, ops in actions.items()
    }


op_steps = st.tuples(
    st.integers(min_value=0, max_value=9),   # chunk index to fire before
    st.integers(min_value=0, max_value=4),   # op code
    st.integers(min_value=0, max_value=7),   # operand a
    st.integers(min_value=0, max_value=7),   # operand b
)


@given(
    plan=st.lists(op_steps, max_size=6),
    stream_seed=st.integers(min_value=0, max_value=2**31 - 1),
    algorithm=st.sampled_from(["CM_fast", "CU_fast", "Count"]),
)
@settings(max_examples=20, deadline=None)
def test_arbitrary_interleavings_are_bit_identical_to_static_fleet(
    plan, stream_seed, algorithm
):
    rng = np.random.default_rng(stream_seed)
    keys = rng.zipf(1.3, 600) % 150
    items = [(int(key), 1) for key in keys]

    result = run_dynamic_ingest(
        algorithm, MEMORY, items, workers=WORKERS, partitions=PARTITIONS,
        transport="inproc", chunk_size=CHUNK, seed=SEED,
        actions=make_ops(plan),
    )
    assert result.total_items == len(items)
    assert result.total_lost == 0

    # Per-partition bit-identity against the static fleet.
    reference = ShardedSketch(
        [build_sketch(algorithm, MEMORY, seed=SEED) for _ in range(PARTITIONS)],
        seed=SEED,
    )
    for start in range(0, len(items), CHUNK):
        piece = items[start : start + CHUNK]
        reference.insert_batch(
            [key for key, _ in piece], [value for _, value in piece]
        )
    for partition in range(PARTITIONS):
        remote = result.partition_sketches[partition].state_snapshot()
        local = reference.shards[partition].state_snapshot()
        assert set(remote) == set(local)
        for name in remote:
            assert np.array_equal(remote[name], local[name]), (
                f"{algorithm} partition {partition} diverged under plan {plan}"
            )

    # Merge guarantee: exact families match single-node bit-for-bit; CU's
    # merged estimate upper-bounds truth (its documented merge semantics).
    truth = {}
    for key, value in items:
        truth[key] = truth.get(key, 0) + value
    queries = sorted(truth)
    if algorithm == "CU_fast":
        estimates = result.merged.query_batch(queries)
        assert all(
            estimate >= truth[key] for key, estimate in zip(queries, estimates)
        )
    else:
        single = build_sketch(algorithm, MEMORY, seed=SEED)
        for start in range(0, len(items), CHUNK):
            piece = items[start : start + CHUNK]
            single.insert_batch(
                [key for key, _ in piece], [value for _, value in piece]
            )
        merged_state = result.merged.state_snapshot()
        single_state = single.state_snapshot()
        for name in single_state:
            assert np.array_equal(merged_state[name], single_state[name])

"""The v3 temporal wire extension: pinned/windowed frames and EPOCH_GONE."""

from __future__ import annotations

import pytest

from repro.distributed.wire import (
    QUERY_FLUSH,
    QUERY_KEYS,
    QUERY_STATS,
    QUERY_TOP_K,
    STATUS_BUSY,
    STATUS_EPOCH_GONE,
    STATUS_OK,
    WireFormatError,
    decode_query_request,
    decode_query_response,
    encode_query_request,
    encode_query_response,
)


def test_pinned_request_round_trips():
    request = decode_query_request(
        encode_query_request(5, QUERY_KEYS, keys=[1, "flow"], epoch=42)
    )
    assert request.epoch == 42 and request.window is None
    assert list(request.keys) == [1, "flow"]

    request = decode_query_request(encode_query_request(6, QUERY_TOP_K, k=3, epoch=0))
    assert request.epoch == 0 and request.k == 3


def test_windowed_request_round_trips():
    request = decode_query_request(
        encode_query_request(7, QUERY_KEYS, keys=[9], window=4)
    )
    assert request.window == 4 and request.epoch is None


def test_plain_frames_stay_byte_identical():
    # The extension is emitted only when set, so pre-temporal peers decode
    # plain frames unchanged — and plain encodings carry no trailing block.
    for kind, kwargs in (
        (QUERY_KEYS, {"keys": [1, 2, 3]}),
        (QUERY_TOP_K, {"k": 5}),
        (QUERY_STATS, {}),
        (QUERY_FLUSH, {}),
    ):
        plain = encode_query_request(1, kind, **kwargs)
        request = decode_query_request(plain)
        assert request.epoch is None and request.window is None
        assert encode_query_request(1, kind, **kwargs) == plain


def test_temporal_field_validation():
    with pytest.raises(WireFormatError):
        encode_query_request(1, QUERY_KEYS, keys=[1], epoch=2, window=3)
    with pytest.raises(WireFormatError):
        encode_query_request(1, QUERY_KEYS, keys=[1], epoch=-1)
    with pytest.raises(WireFormatError):
        encode_query_request(1, QUERY_KEYS, keys=[1], window=0)
    with pytest.raises(WireFormatError):
        encode_query_request(1, QUERY_STATS, epoch=2)  # epoch only on reads
    with pytest.raises(WireFormatError):
        encode_query_request(1, QUERY_TOP_K, k=3, window=2)  # window: keys only


def test_unknown_extension_flag_rejected():
    frame = encode_query_request(1, QUERY_TOP_K, k=2)
    with pytest.raises(WireFormatError):
        decode_query_request(frame + b"\x80" + b"\x00" * 8)


def test_truncated_extension_rejected():
    pinned = encode_query_request(1, QUERY_TOP_K, k=2, epoch=7)
    with pytest.raises(WireFormatError):
        decode_query_request(pinned[:-1])


def test_epoch_gone_response_is_bodyless():
    payload = encode_query_response(9, QUERY_KEYS, 3, status=STATUS_EPOCH_GONE)
    response = decode_query_response(payload)
    assert response.status == STATUS_EPOCH_GONE
    assert response.epoch_id == 3  # echoes the requested epoch
    assert response.estimates is None and response.keys is None
    # Like BUSY, a rejection must not carry a body.
    with pytest.raises(WireFormatError):
        encode_query_response(9, QUERY_KEYS, 3, status=STATUS_EPOCH_GONE, estimates=[1])
    with pytest.raises(WireFormatError):
        decode_query_response(payload + b"\x00")


def test_statuses_are_distinct():
    assert len({STATUS_OK, STATUS_BUSY, STATUS_EPOCH_GONE}) == 3

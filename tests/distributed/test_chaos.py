"""Chaos suite: kill a worker mid-ingest on every transport, prove recovery.

Each test drives the same deterministic schedule — worker 1's link dies
after a fixed number of frames (counter-based, so the run is repeatable on
thread, pipe, and socket transports alike) — and pins the protocol's two
safety properties:

* **No frame double-applied.**  With journal replay the final state is
  bit-identical to a static fleet fed the *whole* stream; any double-apply
  (or silent loss) would break bit-identity.
* **The accuracy delta equals the reported lost window.**  With replay
  disabled, every partition's counters sum to exactly
  ``routed - reported_lost`` items — the coordinator's loss report is the
  truth, not an estimate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.fault import FaultInjectingTransport, FaultPlan
from repro.distributed.ingest import run_dynamic_ingest
from repro.distributed.transport import TRANSPORT_NAMES, create_transport
from repro.sketches.registry import build_sketch
from repro.sketches.sharded import ShardedSketch

MEMORY = 32 * 1024
SEED = 3
CHUNK = 128
PARTITIONS = 6
KILL_AFTER = 9  # frames into worker 1's link: config + 8 routed batches


def zipf_items(count=2000, seed=11, universe=300):
    rng = np.random.default_rng(seed)
    keys = rng.zipf(1.3, count) % universe
    return [(int(key), 1) for key in keys]


def faulty_transport(name):
    return FaultInjectingTransport(
        create_transport(name), plans={1: FaultPlan(kill_after_sends=KILL_AFTER)}
    )


def static_states(items, chunk=CHUNK):
    reference = ShardedSketch(
        [build_sketch("CM_fast", MEMORY, seed=SEED) for _ in range(PARTITIONS)],
        seed=SEED,
    )
    for start in range(0, len(items), chunk):
        piece = items[start : start + chunk]
        reference.insert_batch(
            [key for key, _ in piece], [value for _, value in piece]
        )
    return [shard.state_snapshot() for shard in reference.shards]


@pytest.mark.parametrize("transport_name", TRANSPORT_NAMES)
def test_kill_with_replay_is_lossless_on_every_transport(transport_name):
    items = zipf_items()
    result = run_dynamic_ingest(
        "CM_fast", MEMORY, items, workers=2, partitions=PARTITIONS,
        transport=faulty_transport(transport_name), chunk_size=CHUNK, seed=SEED,
        replay_on_recovery=True,
    )
    (recovery,) = result.recoveries
    assert recovery.worker_id == 1
    assert recovery.lost_items == 0
    assert recovery.replayed_items > 0
    assert result.total_lost == 0
    assert result.total_items == len(items)
    assert result.epoch == len(recovery.partitions)  # one flip per re-placed partition
    assert set(recovery.targets.values()) == {0}  # everything landed on the survivor

    # Bit-identity with the full static fleet: nothing lost, nothing doubled.
    for partition, reference in enumerate(static_states(items)):
        remote = result.partition_sketches[partition].state_snapshot()
        for name in reference:
            assert np.array_equal(remote[name], reference[name]), (
                f"{transport_name}: partition {partition} diverged after recovery"
            )


@pytest.mark.parametrize("transport_name", TRANSPORT_NAMES)
def test_kill_without_replay_reports_the_exact_lost_window(transport_name):
    items = zipf_items()
    result = run_dynamic_ingest(
        "CM_fast", MEMORY, items, workers=2, partitions=PARTITIONS,
        transport=faulty_transport(transport_name), chunk_size=CHUNK, seed=SEED,
        replay_on_recovery=False,
    )
    (recovery,) = result.recoveries
    assert recovery.lost_items > 0
    assert recovery.replayed_items == 0
    assert result.total_lost == recovery.lost_items
    # Only the dead worker's partitions lost anything.
    lost = dict(enumerate(result.items_lost_per_partition))
    assert {p for p, count in lost.items() if count} <= set(recovery.partitions)

    # The accuracy delta IS the reported window: every CM row of every
    # partition sums to exactly the items the coordinator says were applied
    # (all values are 1).  A double-applied frame would overshoot; an
    # unreported loss would undershoot.
    for partition in range(PARTITIONS):
        applied = int(
            result.items_per_partition[partition]
            - result.items_lost_per_partition[partition]
        )
        tables = result.partition_sketches[partition].state_snapshot()["tables"]
        assert tables.sum(axis=1).tolist() == [applied] * tables.shape[0]
        assert result.partition_metas[partition]["items"] == applied


def test_kill_schedule_is_deterministic_across_runs():
    """Same seed, same schedule: two runs produce identical outcomes."""
    items = zipf_items()

    def run():
        result = run_dynamic_ingest(
            "CM_fast", MEMORY, items, workers=2, partitions=PARTITIONS,
            transport=faulty_transport("inproc"), chunk_size=CHUNK, seed=SEED,
            replay_on_recovery=False,
        )
        return (
            result.items_lost_per_partition,
            tuple(r.lost_items for r in result.recoveries),
            result.epoch,
        )

    assert run() == run()


def test_heartbeat_round_detects_a_silent_death():
    """A worker whose link died between batches is found by ping(), not by a
    failed send — the detection path heartbeats exist for."""
    items = zipf_items(1200)
    observed = {}

    def probe(coordinator):
        observed["alive"] = coordinator.ping()

    result = run_dynamic_ingest(
        "CM_fast", MEMORY, items, workers=3, partitions=PARTITIONS,
        transport=FaultInjectingTransport(
            create_transport("inproc"), plans={2: FaultPlan(kill_after_sends=2)}
        ),
        chunk_size=CHUNK, seed=SEED, replay_on_recovery=True,
        actions={5: probe},
    )
    assert observed["alive"] == (0, 1)
    assert [recovery.worker_id for recovery in result.recoveries] == [2]
    assert result.total_lost == 0
    for partition, reference in enumerate(static_states(items)):
        remote = result.partition_sketches[partition].state_snapshot()
        for name in reference:
            assert np.array_equal(remote[name], reference[name])


def test_cascading_failure_still_recovers_when_survivors_remain():
    """Two links die; recovery cascades until a survivor holds everything."""
    items = zipf_items(1600)
    result = run_dynamic_ingest(
        "CM_fast", MEMORY, items, workers=3, partitions=PARTITIONS,
        transport=FaultInjectingTransport(
            create_transport("inproc"),
            plans={
                1: FaultPlan(kill_after_sends=7),
                2: FaultPlan(kill_after_sends=11),
            },
        ),
        chunk_size=CHUNK, seed=SEED, replay_on_recovery=True,
    )
    assert sorted(recovery.worker_id for recovery in result.recoveries) == [1, 2]
    assert result.total_lost == 0
    for partition, reference in enumerate(static_states(items)):
        remote = result.partition_sketches[partition].state_snapshot()
        for name in reference:
            assert np.array_equal(remote[name], reference[name])


def test_total_fleet_loss_fails_loudly():
    items = zipf_items(800)
    with pytest.raises(RuntimeError, match="no surviving workers"):
        run_dynamic_ingest(
            "CM_fast", MEMORY, items, workers=2, partitions=4,
            transport=FaultInjectingTransport(
                create_transport("inproc"),
                plans={
                    0: FaultPlan(kill_after_sends=3),
                    1: FaultPlan(kill_after_sends=3),
                },
            ),
            chunk_size=CHUNK, seed=SEED,
        )

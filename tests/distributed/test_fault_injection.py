"""The fault-injection harness itself must be deterministic and honest.

Before the chaos suite can lean on :mod:`repro.distributed.fault`, the
harness has to prove its own contract: schedules fire at exactly the
declared frame counters, seeded probabilistic drops replay identically,
kills surface as real EOF to the peer, and every decision is recorded.
"""

from __future__ import annotations

import pytest

from repro.distributed.fault import (
    ChannelFault,
    FaultInjectingChannel,
    FaultInjectingTransport,
    FaultPlan,
)
from repro.distributed.transport import InprocTransport, QueueChannel
from repro.distributed.wire import WireFormatError


def make_pair():
    """A queue channel pair: (wrapped side, peer side)."""
    coordinator_side, worker_side = QueueChannel.pair()
    return coordinator_side, worker_side


def test_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(drop_send_probability=1.5)
    with pytest.raises(ValueError):
        FaultPlan(delay_send_seconds=-1.0)


def test_kill_after_sends_fires_at_exact_counter():
    inner, peer = make_pair()
    channel = FaultInjectingChannel(inner, FaultPlan(kill_after_sends=3))
    for _ in range(3):
        channel.send(b"frame")
    assert channel.killed
    # The wrapped side faults on further sends; the peer drains what was
    # delivered, then sees a real EOF.
    with pytest.raises(ChannelFault):
        channel.send(b"frame")
    assert [peer.recv() for _ in range(3)] == [b"frame"] * 3
    assert peer.recv() is None
    assert channel.sends == 3


def test_channel_fault_is_a_wire_format_error():
    """Failure detectors watch WireFormatError; injected faults must match."""
    assert issubclass(ChannelFault, WireFormatError)


def test_kill_after_recvs_returns_none_afterwards():
    inner, peer = make_pair()
    channel = FaultInjectingChannel(inner, FaultPlan(kill_after_recvs=2))
    for index in range(4):
        peer.send(bytes([index]))
    assert channel.recv() == b"\x00"
    assert channel.recv() == b"\x01"
    assert channel.killed
    assert channel.recv() is None  # frames 2..3 are gone with the link
    assert channel.recvs == 2


def test_explicit_drop_schedule_is_exact_and_recorded():
    inner, peer = make_pair()
    channel = FaultInjectingChannel(inner, FaultPlan(drop_sends=frozenset({1, 3})))
    for index in range(5):
        channel.send(bytes([index]))
    inner.close()
    delivered = []
    while (frame := peer.recv()) is not None:
        delivered.append(frame[0])
    assert delivered == [0, 2, 4]
    assert channel.dropped_sends == [1, 3]
    # The sender cannot tell a dropped frame from a delivered one.
    assert channel.sends == 5
    assert channel.bytes_sent == 5


def test_seeded_probabilistic_drops_replay_identically():
    def run(seed):
        inner, _ = make_pair()
        channel = FaultInjectingChannel(
            inner, FaultPlan(drop_send_probability=0.5, seed=seed)
        )
        for index in range(64):
            channel.send(bytes([index]))
        return tuple(channel.dropped_sends)

    assert run(11) == run(11)  # same seed, same coin flips
    assert run(11) != run(12)  # different seed, different schedule


def test_transport_wrapper_applies_plans_by_launch_index():
    def worker(channel):
        while channel.recv() is not None:
            pass
        channel.close()

    transport = FaultInjectingTransport(
        InprocTransport(), plans={1: FaultPlan(kill_after_sends=1)}
    )
    channels = transport.launch(worker, 2)
    assert transport.name == "faulty+inproc"
    assert all(isinstance(channel, FaultInjectingChannel) for channel in channels)

    channels[0].send(b"ok")
    channels[0].send(b"ok")  # unplanned workers pass everything through
    channels[1].send(b"boom")
    with pytest.raises(ChannelFault):
        channels[1].send(b"never")

    # Incremental launches wrap only the new tail — the cumulative list and
    # each channel's wrapper (with its counters) are stable across calls.
    more = transport.launch(worker, 1)
    assert more[:2] == channels[:2]
    assert len(more) == 3
    assert more[1].killed

    for channel in more:
        if not channel.killed:
            channel.close()
    transport.close()
    transport.join(timeout=5)

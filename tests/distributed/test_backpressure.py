"""Credit-based flow control: a slow worker bounds the coordinator, not RAM.

Every ROUTED_BATCH costs one credit from the owner's window; the worker
returns a credit per frame it applies (or rejects).  With a deliberately
slow worker the coordinator must block at the credit limit — the worker's
inbox and the coordinator's outstanding count stay bounded — and once the
stream ends the window must drain completely.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.distributed.fault import (
    FaultInjectingChannel,
    FaultInjectingTransport,
    FaultPlan,
)
from repro.distributed.ingest import DynamicIngestCoordinator, run_dynamic_ingest
from repro.distributed.transport import InprocTransport, QueueChannel

MEMORY = 16 * 1024
SEED = 3


def items_for(count, seed=5):
    rng = np.random.default_rng(seed)
    return [(int(key), 1) for key in rng.integers(0, 200, count)]


def slow_transport(delay_recv_seconds):
    """Delay every frame the coordinator *reads back* from worker 0 — its
    credits arrive late, which is indistinguishable from a slow worker."""
    return FaultInjectingTransport(
        InprocTransport(),
        plans={0: FaultPlan(delay_recv_seconds=delay_recv_seconds)},
    )


def test_outstanding_batches_cap_at_the_credit_limit():
    credit_limit = 4
    transport = slow_transport(0.002)
    coordinator = DynamicIngestCoordinator(
        "CM_fast", MEMORY, workers=1, transport=transport,
        partitions=1, seed=SEED, credit_limit=credit_limit,
        journal_limit=10_000,
    )
    inbox_sizes = []
    stop = threading.Event()
    channel = coordinator._workers[0].channel
    assert isinstance(channel, FaultInjectingChannel)
    inbox = channel.inner._send_queue  # frames the worker has not consumed yet

    def sample():
        while not stop.is_set():
            inbox_sizes.append(inbox.qsize())
            stop.wait(0.001)

    sampler = threading.Thread(target=sample, daemon=True)
    sampler.start()
    try:
        for start in range(0, 2000, 50):
            piece = items_for(2000)[start : start + 50]
            coordinator.send_batch(
                [key for key, _ in piece], [value for _, value in piece]
            )
        sketches, metas = coordinator.collect()
    finally:
        stop.set()
        sampler.join(timeout=5)
        coordinator.shutdown()

    # The coordinator hit the cap (the slow worker really did push back)
    # and never exceeded it.
    assert coordinator.max_outstanding == credit_limit
    # The worker's inbox held at most the credit window plus the in-flight
    # control frames of the final collect (CONFIG rode ahead of sampling).
    assert max(inbox_sizes) <= credit_limit + 1
    # Eventual drain: collection saw every item, credits all came home.
    assert metas[0]["items"] == 2000
    assert coordinator._workers[0].credits == credit_limit


def test_fast_workers_never_feel_the_window():
    """With an instant worker the window never empties: outstanding stays
    below the limit, proving back-pressure only engages under lag."""
    result = run_dynamic_ingest(
        "CM_fast", MEMORY, items_for(3000), workers=2, partitions=2,
        transport="inproc", chunk_size=100, seed=SEED, credit_limit=64,
    )
    assert result.max_outstanding < 64
    assert result.total_items == 3000


def test_slow_run_still_bit_identical_and_complete():
    """Back-pressure is pure pacing: the slow path changes no state."""
    items = items_for(1500)
    slow = run_dynamic_ingest(
        "CM_fast", MEMORY, items, workers=2, partitions=4,
        transport=slow_transport(0.001), chunk_size=128, seed=SEED,
        credit_limit=2,
    )
    fast = run_dynamic_ingest(
        "CM_fast", MEMORY, items, workers=2, partitions=4,
        transport="inproc", chunk_size=128, seed=SEED,
    )
    assert slow.max_outstanding == 2
    for slow_shard, fast_shard in zip(slow.partition_sketches, fast.partition_sketches):
        slow_state = slow_shard.state_snapshot()
        fast_state = fast_shard.state_snapshot()
        for name in slow_state:
            assert np.array_equal(slow_state[name], fast_state[name])

"""Epoch rotation and replication: the foundation of snapshot isolation.

The core property pinned here is *frozen epochs*: once published, an
epoch's answers never change, no matter how much the live sketch ingests
afterwards — and a published epoch is always bit-identical to a frozen
copy of the sketch taken at publication time.
"""

from __future__ import annotations

import copy

import pytest

from repro.experiments.runner import ExperimentSettings, run_sketch
from repro.serve.snapshots import EpochWriter, replicate_sketch
from repro.sketches.registry import build_sketch, snapshot_names
from repro.streams.synthetic import zipf_stream

MEMORY = 32 * 1024
#: Snapshot families plus a deepcopy-only family (replication must work for
#: both paths).
FAMILIES = ("CM_fast", "CU_fast", "Count", "Ours", "Elastic")


def filled_sketch(name, count=5000, seed=3):
    sketch = build_sketch(name, MEMORY, seed=0)
    stream = zipf_stream(count, skew=1.1, universe=2000, seed=seed)
    sketch.insert_stream(stream, batch_size=512)
    return sketch, stream.keys()


@pytest.mark.parametrize("name", FAMILIES)
def test_replicate_answers_bit_identically(name):
    sketch, keys = filled_sketch(name)
    factory = lambda: build_sketch(name, MEMORY, seed=0)  # noqa: E731
    for replica in (replicate_sketch(sketch), replicate_sketch(sketch, factory)):
        assert (replica.query_batch(keys) == sketch.query_batch(keys)).all()


def test_replicate_shares_no_state():
    sketch, keys = filled_sketch("CM_fast")
    replica = replicate_sketch(sketch, lambda: build_sketch("CM_fast", MEMORY, seed=0))
    before = replica.query_batch(keys).copy()
    sketch.insert_batch(keys)  # mutate the donor only
    assert (replica.query_batch(keys) == before).all()


def test_epoch_zero_is_published_empty():
    writer = EpochWriter(build_sketch("CM_fast", MEMORY, seed=0))
    assert writer.current.epoch_id == 0
    assert writer.current.items == 0
    assert writer.current.sketch.query(123) == 0


def test_publish_cadence_and_staleness():
    writer = EpochWriter(
        build_sketch("CM_fast", MEMORY, seed=0), publish_every_items=1000
    )
    writer.ingest(list(range(999)))
    assert writer.current.epoch_id == 0 and writer.staleness_items == 999
    writer.ingest([999])  # crosses the threshold at the batch boundary
    assert writer.current.epoch_id == 1
    assert writer.current.items == 1000 and writer.staleness_items == 0
    # interval accounting
    writer.ingest(list(range(2500)))
    assert writer.current.epoch_id == 2
    assert writer.publish_count == 2
    assert writer.max_interval_items == 2500
    assert writer.total_interval_items == 3500


@pytest.mark.parametrize("name", ("CM_fast", "Ours"))
def test_published_epoch_is_frozen(name):
    """An epoch equals a deepcopy taken at publish time, forever."""
    writer = EpochWriter(
        build_sketch(name, MEMORY, seed=0),
        factory=lambda: build_sketch(name, MEMORY, seed=0),
        publish_every_items=500,
    )
    stream = zipf_stream(4000, skew=1.2, universe=800, seed=9)
    keys = stream.keys()
    frozen = {}
    for chunk in stream.iter_batches(500):
        writer.ingest([item.key for item in chunk], [item.value for item in chunk])
        epoch = writer.current
        if epoch.epoch_id not in frozen:
            frozen[epoch.epoch_id] = (epoch, copy.deepcopy(epoch.sketch))
    assert len(frozen) >= 4
    for epoch, reference in frozen.values():
        assert (epoch.query_batch(keys) == reference.query_batch(keys)).all()


def test_flush_publishes_complete_state():
    writer = EpochWriter(
        build_sketch("CU_fast", MEMORY, seed=0), publish_every_items=10**9
    )
    stream = zipf_stream(3000, skew=1.1, universe=500, seed=4)
    for chunk in stream.iter_batches(700):
        writer.ingest([item.key for item in chunk], [item.value for item in chunk])
    epoch = writer.publish()
    assert epoch.items == 3000
    keys = stream.keys()
    assert (epoch.query_batch(keys) == writer.live_sketch.query_batch(keys)).all()


def test_wall_clock_cadence_publishes_without_filling_the_item_budget():
    writer = EpochWriter(
        build_sketch("CM_fast", MEMORY, seed=0),
        publish_every_items=10**9,
        publish_every_seconds=1e-6,  # any elapsed time is "long enough"
    )
    writer.ingest([1, 2, 3])
    assert writer.current.epoch_id == 1  # time bound fired, items bound far off
    assert writer.current.items == 3


def test_writer_rejects_bad_cadence():
    sketch = build_sketch("CM_fast", MEMORY, seed=0)
    with pytest.raises(ValueError):
        EpochWriter(sketch, publish_every_items=0)
    with pytest.raises(ValueError):
        EpochWriter(sketch, publish_every_seconds=0.0)


def test_runner_rejects_epoch_items_with_transport(small_zipf_stream):
    """Conflicting knobs raise — neither is ever silently ignored."""
    with pytest.raises(ValueError):
        run_sketch(
            "CM_fast", MEMORY, small_zipf_stream,
            ExperimentSettings(transport="inproc", epoch_items=1024),
        )


def test_loadgen_epoch_count_excludes_the_drain_flush():
    """epochs_published reflects in-run rotation, not the final flush."""
    from repro.serve import LoadGenConfig, ServeConfig, ServingSession, run_loadgen

    config = ServeConfig("CM_fast", MEMORY, seed=0, publish_every_items=10**9)
    with ServingSession(config, "inproc") as session:
        report = run_loadgen(session.client, LoadGenConfig(operations=60, seed=2))
    assert report.epochs_published == 0  # nothing rotated during the run
    assert report.epoch_consistent  # the flush still drained for the check


@pytest.mark.parametrize("name", snapshot_names())
def test_runner_epoch_items_is_bit_identical(name, small_zipf_stream):
    """The ExperimentSettings.epoch_items knob never changes results."""
    direct = run_sketch(name, MEMORY, small_zipf_stream)
    served = run_sketch(
        name, MEMORY, small_zipf_stream,
        ExperimentSettings(epoch_items=4096, batch_size=1024),
    )
    assert direct.report.outliers == served.report.outliers
    assert direct.report.aae == served.report.aae
    keys = small_zipf_stream.keys()
    assert (direct.sketch.query_batch(keys) == served.sketch.query_batch(keys)).all()

"""Temporal serving: pinned epochs, sliding windows, change alerts, EPOCH_GONE.

Service-level first (ring integration, bit-identical time travel, exact
window deltas, per-publish listeners), then end to end over the wire on
both front ends — the sequential session loop and the async event loop —
including the client's typed, non-retried rejection errors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.async_server import AsyncServingSession
from repro.serve.errors import EpochGoneError, QueryRejectedError, ServerBusyError
from repro.serve.server import ServeConfig, ServingSession
from repro.serve.service import SketchService
from repro.sketches.registry import build_sketch

MEMORY = 32 * 1024


def make_service(name="CM_fast", publish_every_items=100, **kwargs) -> SketchService:
    return SketchService(
        build_sketch(name, MEMORY, seed=0),
        factory=lambda: build_sketch(name, MEMORY, seed=0),
        publish_every_items=publish_every_items,
        **kwargs,
    )


def ingest_epochs(service, rounds, keys_per_round=50, per_key=2):
    """Drive ``rounds`` publishes of 100 items over a fixed key set."""
    for _ in range(rounds):
        service.ingest(np.tile(np.arange(keys_per_round, dtype=np.int64), per_key))


# ------------------------------------------------------------ ring integration
def test_every_publish_lands_in_the_ring():
    service = make_service(ring_epochs=4)
    ingest_epochs(service, 3)
    assert service.ring.epochs == (0, 1, 2, 3)
    ingest_epochs(service, 3)
    assert service.ring.epochs == (3, 4, 5, 6)
    assert service.ring.evictions == 3


def test_pinned_reads_bit_identical_after_later_publishes_and_evictions():
    service = make_service(ring_epochs=8)
    ingest_epochs(service, 2)
    pinned = service.ring.get(2)
    expected = pinned.query_batch(list(range(10))).copy()
    # Later publishes (and evictions of *other* epochs) must not disturb it.
    ingest_epochs(service, 6)
    assert 0 not in service.ring  # evicted
    estimates, answered = service.serve_batch(list(range(10)), epoch=2)
    assert answered == 2
    assert np.array_equal(estimates, expected)
    # Again after more churn (epoch 2 is now the ring's oldest resident):
    ingest_epochs(service, 1)
    assert service.ring.epochs[0] == 2
    estimates, _ = service.serve_batch(list(range(10)), epoch=2)
    assert np.array_equal(estimates, expected)


@pytest.mark.parametrize("name", ["CM_fast", "Count"])
def test_window_matches_exact_table_subtraction(name):
    service = make_service(name=name, ring_epochs=8)
    ingest_epochs(service, 5)
    current = service.current_epoch
    earlier = service.ring.get(current.epoch_id - 3)
    estimates, answered = service.serve_batch(list(range(10)), window=3)
    assert answered == current.epoch_id
    manual = current.query_batch(list(range(10))) - earlier.query_batch(list(range(10)))
    assert np.array_equal(estimates, manual)


def test_window_of_current_epoch_count_is_full_history():
    service = make_service(ring_epochs=8)
    ingest_epochs(service, 4)
    whole, answered = service.serve_batch([0, 1], window=4)
    latest, _ = service.serve_batch([0, 1])
    assert np.array_equal(whole, latest)  # epoch 0 is the empty sketch


def test_window_beyond_history_is_epoch_gone():
    service = make_service(ring_epochs=8)
    ingest_epochs(service, 2)
    with pytest.raises(EpochGoneError):
        service.serve_batch([1], window=5)
    assert service.epoch_gone_rejections == 1


def test_pinned_epoch_evicted_is_epoch_gone():
    service = make_service(ring_epochs=2)
    ingest_epochs(service, 5)
    with pytest.raises(EpochGoneError) as caught:
        service.serve_batch([1], epoch=0)
    assert caught.value.epoch_id == 0
    assert service.epoch_gone_rejections == 1
    assert service.stats()["temporal"]["epoch_gone_rejections"] == 1


def test_epoch_and_window_are_mutually_exclusive():
    service = make_service()
    with pytest.raises(ValueError):
        service.serve_batch([1], epoch=0, window=1)


def test_window_on_unsubtractable_family_raises():
    from repro.sketches.base import UnmergeableSketchError

    service = make_service(name="CU_fast")
    ingest_epochs(service, 2)
    with pytest.raises(UnmergeableSketchError):
        service.serve_batch([1], window=1)


def test_pinned_top_k_ranks_against_the_pinned_epoch():
    service = make_service(max_tracked_keys=64, ring_epochs=8)
    ingest_epochs(service, 1)
    service.ingest(np.full(100, 7, dtype=np.int64))  # epoch 2: key 7 surges
    ranking_now, _ = service.serve_top_k(3)
    assert ranking_now[0][0] == 7
    ranking_then, answered = service.serve_top_k(3, epoch=1)
    assert answered == 1
    # At epoch 1 every key had the same count; key 7 was not yet on top.
    estimates = dict(ranking_then)
    assert estimates[ranking_then[0][0]] == service.ring.get(1).sketch.query(
        ranking_then[0][0]
    )


def test_window_cache_memoizes_until_publish():
    service = make_service(ring_epochs=8)
    ingest_epochs(service, 3)
    first, _ = service.window_sketch(2)
    again, _ = service.window_sketch(2)
    assert first is again  # memoized for the same (epoch, window)
    ingest_epochs(service, 1)
    after, _ = service.window_sketch(2)
    assert after is not first  # cache cleared on publish


# ------------------------------------------------------------ change detection
def test_diff_epochs_reports_exact_deltas():
    service = make_service(max_tracked_keys=64, ring_epochs=8)
    ingest_epochs(service, 1)
    service.ingest(np.full(100, 3, dtype=np.int64))
    report = service.diff_epochs(1)
    assert report.later_epoch == 2
    surged = {change.key: change.delta for change in report.surges}
    assert surged[3] >= 100  # CM overestimates never under
    with pytest.raises(ValueError):
        service.diff_epochs(2, later=1)


def test_change_listener_fires_on_publish():
    service = make_service(max_tracked_keys=64, ring_epochs=8)
    reports = []
    service.add_change_listener(reports.append, k=5, min_delta=1)
    ingest_epochs(service, 2)
    assert len(reports) >= 1
    assert all(report.has_changes for report in reports)
    assert reports[0].later_epoch == reports[0].earlier_epoch + 1


def test_raising_listener_is_counted_not_fatal():
    service = make_service(max_tracked_keys=64, ring_epochs=8)

    def explode(report):
        raise RuntimeError("listener bug")

    service.add_change_listener(explode)
    ingest_epochs(service, 2)  # must not raise out of ingest
    assert service.change_alert_errors >= 1
    assert service.stats()["temporal"]["change_alert_errors"] >= 1


def test_change_listener_requires_directory():
    service = make_service()  # track_keys left on by default?
    service_untracked = SketchService(
        build_sketch("CM_fast", MEMORY, seed=0),
        factory=lambda: build_sketch("CM_fast", MEMORY, seed=0),
        track_keys=False,
    )
    with pytest.raises(ValueError):
        service_untracked.add_change_listener(lambda report: None)
    with pytest.raises(ValueError):
        service.add_change_listener(lambda report: None, k=0)
    with pytest.raises(ValueError):
        service.add_change_listener(lambda report: None, min_delta=0)


# ------------------------------------------------------------------ wire + e2e
def fill_epochs(client, epochs=4, items_per_epoch=100):
    keys = list(range(50))
    for _ in range(epochs):
        client.ingest(keys * 2, [1] * 100)
    client.flush()


@pytest.mark.parametrize("transport", ["inproc", "tcp"])
def test_sequential_front_end_pinned_and_gone(transport):
    config = ServeConfig(
        "CM_fast", MEMORY, publish_every_items=100, ring_epochs=3,
        max_tracked_keys=64,
    )
    with ServingSession(config, transport=transport) as session:
        fill_epochs(session.client, epochs=6)
        stats = session.client.stats()
        resident = stats["temporal"]["resident_epochs"]
        pinned_epoch = resident[0]
        estimates, answered = session.client.query_batch([1, 2], epoch=pinned_epoch)
        assert answered == pinned_epoch
        # Windowed read over the wire matches pinned subtraction.
        windowed, later = session.client.query_batch([1, 2], window=1)
        upper, _ = session.client.query_batch([1, 2], epoch=later)
        lower, _ = session.client.query_batch([1, 2], epoch=later - 1)
        assert np.array_equal(windowed, upper - lower)
        # Evicted epoch: typed, non-retryable error — immediately.
        with pytest.raises(EpochGoneError) as caught:
            session.client.query_batch([1], epoch=0)
        assert caught.value.epoch_id == 0
        assert not caught.value.retryable
        # Pinned top-k over the wire.
        ranking, answered = session.client.top_k(3, epoch=pinned_epoch)
        assert answered == pinned_epoch and len(ranking) == 3


def test_async_front_end_pinned_and_gone():
    config = ServeConfig(
        "CM_fast", MEMORY, publish_every_items=100, ring_epochs=3,
        max_tracked_keys=64,
    )
    with AsyncServingSession(config.build_service()) as session:
        client = session.connect()
        try:
            fill_epochs(client, epochs=6)
            resident = client.stats()["temporal"]["resident_epochs"]
            estimates, answered = client.query_batch([1, 2], epoch=resident[0])
            assert answered == resident[0]
            with pytest.raises(EpochGoneError):
                client.query_batch([1], epoch=0)
            # The connection survives the rejection: next query answers.
            _, latest = client.query_batch([1, 2])
            assert latest == resident[-1]
        finally:
            client.close()


def test_typed_hierarchy():
    assert issubclass(ServerBusyError, QueryRejectedError)
    assert issubclass(EpochGoneError, QueryRejectedError)
    assert ServerBusyError(1, 2, 3).retryable
    assert not EpochGoneError(4).retryable
    error = EpochGoneError(4, oldest=2, newest=9)
    assert "2..9" in str(error)

"""The async front end's acceptance properties: parity, robustness, BUSY.

Three groups pin the event-loop server to the sequential baseline:

* **Pipelining parity** — M interleaved clients issuing pipelined queries
  against :class:`AsyncSketchServer` get answers bit-identical to a
  sequential :class:`ServingSession` replay of the same requests, for
  every served family, including across an epoch publish mid-run.
* **Hostile/slow clients** — a slowloris peer (one byte at a time) is
  served correctly without stalling others; a mid-frame disconnect or an
  oversized declared length closes only that connection, with the error
  counted, while the server keeps serving.
* **Back-pressure** — with the in-flight bound forced to 1, the server
  emits typed BUSY replies and the open-loop load generator retries them
  to completion; replies stay in request order throughout.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.distributed import wire
from repro.distributed.transport import SocketChannel
from repro.distributed.wire import (
    MSG_QUERY,
    QUERY_KEYS,
    encode_frame,
    encode_query_request,
)
from repro.serve.async_server import AsyncServingSession, AsyncSketchServer
from repro.serve.loadgen import OpenLoopConfig, run_open_loop
from repro.serve.server import QueryClient, ServeConfig, ServingSession
from repro.sketches.registry import build_sketch, mergeable_names
from repro.streams.synthetic import zipf_stream

MEMORY = 32 * 1024
#: The parity matrix: every mergeable family plus ReliableSketch (both
#: variants) — the same acceptance matrix as the service-level tests.
FAMILIES = tuple(sorted(mergeable_names())) + ("Ours", "Ours(Raw)")


def make_session(algorithm: str, **server_kwargs) -> AsyncServingSession:
    config = ServeConfig(algorithm, MEMORY, seed=0, publish_every_items=10**9)
    return AsyncServingSession(config.build_service(), **server_kwargs)


def raw_connect(session: AsyncServingSession) -> socket.socket:
    sock = socket.create_connection(session.address, timeout=30.0)
    sock.settimeout(10.0)
    return sock


# --------------------------------------------------------------- basic parity
def test_single_client_answers_match_local_reference():
    stream = zipf_stream(4000, skew=1.1, universe=800, seed=3)
    reference = build_sketch("CM_fast", MEMORY, seed=0)
    with make_session("CM_fast") as session:
        client = session.connect()
        for chunk in stream.iter_batches(512):
            keys = [item.key for item in chunk]
            client.ingest(keys)
            reference.insert_batch(keys)
        client.flush()
        query_keys = stream.keys() + ["absent", -5]
        served, epoch_id = client.query_batch(query_keys)
        assert epoch_id >= 1
        assert (served == reference.query_batch(query_keys)).all()
        # The other request kinds ride the same path.
        assert client.stats()["items_ingested"] == len(stream)
        ranking, _ = client.top_k(5)
        client.close()
    assert len(ranking) == 5


@pytest.mark.parametrize("algorithm", FAMILIES)
def test_interleaved_pipelined_clients_match_sequential_replay(algorithm):
    """M concurrent pipelined clients == sequential ServingSession, twice:
    before and after an epoch publish between the two read phases."""
    stream = zipf_stream(3000, skew=1.2, universe=600, seed=9)
    items = [item.key for item in stream]
    first, second = items[:1500], items[1500:]
    batches = [items[i * 25 : (i + 1) * 25] + ["absent", -1] for i in range(24)]

    config = ServeConfig(algorithm, MEMORY, seed=0, publish_every_items=10**9)
    with ServingSession(config, "inproc") as sequential, \
            make_session(algorithm) as session:
        writer = session.connect()

        def both_phases(keys):
            sequential.client.ingest(keys)
            writer.ingest(keys)
            sequential_epoch = sequential.client.flush()
            async_epoch = writer.flush()
            assert sequential_epoch == async_epoch
            expected = [sequential.client.query_batch(batch) for batch in batches]

            def pipelined(offset: int):
                client = session.connect()
                rotated = batches[offset:] + batches[:offset]
                try:
                    return offset, client.query_batches_pipelined(rotated)
                finally:
                    client.close()

            with ThreadPoolExecutor(max_workers=3) as pool:
                results = list(pool.map(pipelined, range(3)))
            for offset, answers in results:
                rotated = expected[offset:] + expected[:offset]
                for (estimates, epoch_id), (want, want_epoch) in zip(answers, rotated):
                    assert epoch_id == want_epoch
                    assert (estimates == want).all(), (
                        f"{algorithm}: pipelined answers diverged from the "
                        f"sequential replay at epoch {epoch_id}"
                    )

        both_phases(first)
        both_phases(second)  # the epoch publish in between is the point
        writer.close()


def test_answers_stay_consistent_across_concurrent_publish():
    """Readers in flight while an epoch publishes: every reply must equal
    the sequential answer *of the epoch that stamped it*."""
    config = ServeConfig("Ours", MEMORY, seed=0, publish_every_items=10**9)
    items = [item.key for item in zipf_stream(2000, skew=1.2, universe=400, seed=4)]
    probe = sorted(set(items[:200]))
    with ServingSession(config, "inproc") as sequential, \
            make_session("Ours") as session:
        writer = session.connect()
        sequential.client.ingest(items[:1000])
        writer.ingest(items[:1000])
        epoch_before = writer.flush()
        assert sequential.client.flush() == epoch_before
        expected = {epoch_before: sequential.client.query_batch(probe)[0]}

        stop = threading.Event()
        failures: list[str] = []

        def reader():
            client = session.connect()
            try:
                while not stop.is_set():
                    estimates, epoch_id = client.query_batch(probe)
                    want = expected.get(epoch_id)
                    if want is None:
                        failures.append(f"unknown epoch {epoch_id}")
                        return
                    if not (estimates == want).all():
                        failures.append(f"answers diverged at epoch {epoch_id}")
                        return
            finally:
                client.close()

        threads = [threading.Thread(target=reader, daemon=True) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        # Publish mid-flight: pre-compute the next epoch's reference before
        # the async side can stamp replies with it.
        sequential.client.ingest(items[1000:])
        epoch_after = sequential.client.flush()
        expected[epoch_after] = sequential.client.query_batch(probe)[0]
        writer.ingest(items[1000:])
        assert writer.flush() == epoch_after
        time.sleep(0.05)
        stop.set()
        for thread in threads:
            thread.join(timeout=15)
        writer.close()
    assert not failures, failures


# ----------------------------------------------------------- hostile clients
def test_slowloris_client_is_served_and_stalls_nobody():
    """One byte at a time is a slow client, not an error — and the event
    loop keeps serving fast clients while reassembling its frame."""
    reference = build_sketch("CM_fast", MEMORY, seed=0)
    reference.insert_batch([7] * 5)
    expected = reference.query_batch([7, 8]).tolist()
    with make_session("CM_fast") as session:
        seed_client = session.connect()
        seed_client.ingest([7] * 5)
        seed_client.flush()

        slow = raw_connect(session)
        frame = encode_frame(
            MSG_QUERY, encode_query_request(1, QUERY_KEYS, keys=[7, 8])
        )
        fast = session.connect()
        for i, byte in enumerate(frame):
            slow.sendall(bytes([byte]))
            if i % 8 == 0:  # fast traffic interleaves with the slow drip
                estimates, _ = fast.query_batch([7])
                assert estimates.tolist() == expected[:1]
        reply_channel = SocketChannel(slow)
        reply = reply_channel.recv()
        assert reply is not None
        msg_type, payload = wire.decode_frame(reply)
        response = wire.decode_query_response(payload)
        assert msg_type == wire.MSG_QUERY_REPLY
        assert response.estimates.tolist() == expected
        reply_channel.close()
        fast.close()
        seed_client.close()
        stats = session.shutdown()
    assert stats.frame_errors == 0 and stats.closed_error == 0


def test_mid_frame_disconnect_closes_only_that_connection():
    with make_session("CM_fast") as session:
        seed_client = session.connect()
        seed_client.ingest([1, 2, 3])
        seed_client.flush()

        truncated = raw_connect(session)
        frame = encode_frame(
            MSG_QUERY, encode_query_request(1, QUERY_KEYS, keys=[1, 2, 3])
        )
        truncated.sendall(frame[: len(frame) - 3])
        truncated.close()

        survivor = session.connect()
        for _ in range(50):  # the close races the probe; poll the counter
            if session.server.stats.truncated_disconnects:
                break
            time.sleep(0.02)
        estimates, _ = survivor.query_batch([1])
        assert estimates.tolist() == [1]
        survivor.close()
        seed_client.close()
        stats = session.shutdown()
    assert stats.truncated_disconnects == 1
    assert stats.queries_served >= 1


def test_oversized_declared_length_rejected_without_allocation():
    with make_session("CM_fast") as session:
        hostile = raw_connect(session)
        hostile.sendall(
            struct.pack(
                ">2sBBI", wire.MAGIC, wire.WIRE_VERSION, MSG_QUERY,
                wire.MAX_PAYLOAD_BYTES + 1,
            )
        )
        # The server must hang up on us, not wait for 64 MiB that never comes.
        assert hostile.recv(1) == b""
        hostile.close()

        garbage = raw_connect(session)
        garbage.sendall(b"GET / HTTP/1.1\r\n\r\n")
        assert garbage.recv(1) == b""
        garbage.close()

        survivor = session.connect()
        assert survivor.stats()["items_ingested"] == 0
        survivor.close()
        stats = session.shutdown()
    assert stats.oversized_rejected == 1
    assert stats.frame_errors == 1  # the garbage-magic peer
    assert stats.closed_error == 2


# ------------------------------------------------------------- back-pressure
def test_forced_busy_is_produced_and_retried_to_completion():
    """max_inflight=1 forces BUSY under any pipelining; the open-loop
    generator must retry every rejection and still finish consistent."""
    config = ServeConfig("CM_fast", MEMORY, seed=0, publish_every_items=10**9)
    service = config.build_service()
    reference = build_sketch("CM_fast", MEMORY, seed=0)
    keys = [item.key for item in zipf_stream(2000, skew=1.1, universe=300, seed=1)]
    service.ingest(keys)
    reference.insert_batch(keys)
    service.flush()

    with AsyncServingSession(service, max_inflight=1, service_batch=1) as session:
        report = run_open_loop(
            session.connect,
            OpenLoopConfig(
                clients=3, requests_per_client=60, target_qps=0.0,
                read_batch=8, batch_pool=16, seed=2, busy_retries=None,
            ),
            reference=reference,
        )
        stats = session.shutdown()
    assert report.busy_rejected > 0, "max_inflight=1 under pipelining must BUSY"
    assert stats.busy_rejected == report.busy_rejected
    assert report.busy_retried == report.busy_rejected
    assert report.completed == report.requests_total and report.failed == 0
    assert report.epoch_consistent, report.client_errors


def test_busy_without_retries_fails_requests_not_connections():
    service = ServeConfig(
        "CM_fast", MEMORY, seed=0, publish_every_items=10**9
    ).build_service()
    service.flush()
    with AsyncServingSession(service, max_inflight=1, service_batch=1) as session:
        report = run_open_loop(
            session.connect,
            OpenLoopConfig(
                clients=2, requests_per_client=40, target_qps=0.0,
                read_batch=4, batch_pool=8, seed=3, busy_retries=0,
            ),
        )
    assert report.busy_rejected > 0 and report.busy_retried == 0
    assert report.failed == report.busy_rejected
    assert report.completed + report.failed == report.requests_total
    assert not report.client_errors


def test_open_loop_paced_run_reports_latency_and_epochs():
    """A paced (Poisson) run: all requests complete, epochs rotate mid-run,
    and the consistency signals hold across the publishes."""
    service = ServeConfig(
        "CM_fast", MEMORY, seed=0, publish_every_items=10**9
    ).build_service()
    reference = build_sketch("CM_fast", MEMORY, seed=0)
    keys = [item.key for item in zipf_stream(1500, skew=1.1, universe=200, seed=5)]
    service.ingest(keys)
    reference.insert_batch(keys)
    service.flush()
    with AsyncServingSession(service) as session:
        report = run_open_loop(
            session.connect,
            OpenLoopConfig(
                clients=3, requests_per_client=50, target_qps=600.0,
                read_batch=8, batch_pool=16, seed=6, flushes_during_run=2,
            ),
            reference=reference,
        )
    assert report.completed == report.requests_total
    assert report.epoch_consistent, report.client_errors
    assert report.epochs_observed >= 1
    assert report.latency_p50_ms > 0
    assert report.latency_p999_ms >= report.latency_p99_ms >= report.latency_p50_ms


def test_open_loop_config_validation():
    with pytest.raises(ValueError):
        OpenLoopConfig(clients=0)
    with pytest.raises(ValueError):
        OpenLoopConfig(target_qps=-1.0)
    with pytest.raises(ValueError):
        OpenLoopConfig(read_batch=0)
    with pytest.raises(ValueError):
        OpenLoopConfig(max_inflight_per_client=0)


# ------------------------------------------------------------ server hygiene
def test_graceful_drain_answers_everything_accepted():
    """shutdown() after queries are in flight: every accepted query is
    answered before the sockets close, and the stats say so."""
    service = ServeConfig(
        "CM_fast", MEMORY, seed=0, publish_every_items=10**9
    ).build_service()
    service.ingest(list(range(100)))
    service.flush()
    session = AsyncServingSession(service)
    client = session.connect()
    batches = [[k, k + 1] for k in range(40)]
    answers = client.query_batches_pipelined(batches, max_inflight=40)
    stats = session.shutdown()
    assert len(answers) == len(batches)
    assert stats.drained
    assert stats.queries_served >= len(batches)
    assert stats.accepted >= 1


def test_server_constructor_validation():
    service = ServeConfig("CM_fast", MEMORY, seed=0).build_service()
    with pytest.raises(ValueError):
        AsyncSketchServer(service, max_inflight=0)
    with pytest.raises(ValueError):
        AsyncSketchServer(service, backlog=0)
    with pytest.raises(ValueError):
        AsyncSketchServer(service, drain_timeout=-1.0)

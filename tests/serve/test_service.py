"""SketchService semantics: epoch-pinned reads, the answer cache, top-k."""

from __future__ import annotations

import pytest

from repro.serve.service import SketchService
from repro.sketches.registry import build_sketch
from repro.streams.synthetic import zipf_stream

MEMORY = 32 * 1024


def make_service(name="CM_fast", publish_every_items=1000, **kwargs) -> SketchService:
    return SketchService(
        build_sketch(name, MEMORY, seed=0),
        factory=lambda: build_sketch(name, MEMORY, seed=0),
        publish_every_items=publish_every_items,
        **kwargs,
    )


def test_reads_lag_until_publish():
    service = make_service(publish_every_items=1000)
    service.ingest([7] * 600)
    assert service.query(7) == 0  # epoch 0 is the empty sketch
    service.ingest([7] * 600)  # crosses the epoch boundary
    assert service.query(7) == 1200
    assert service.current_epoch.epoch_id == 1


def test_flush_forces_read_your_writes():
    service = make_service(publish_every_items=10**9)
    service.ingest([1, 1, 2])
    assert service.query_batch([1, 2]).tolist() == [0, 0]
    service.flush()
    assert service.query_batch([1, 2]).tolist() == [2, 1]


def test_serve_batch_stamps_the_answering_epoch():
    service = make_service(publish_every_items=100)
    service.ingest(list(range(100)))
    estimates, epoch_id = service.serve_batch([1, 2])
    assert epoch_id == service.current_epoch.epoch_id == 1
    assert estimates.tolist() == [1, 1]


def test_cache_hits_within_epoch_and_invalidates_on_publish():
    service = make_service(publish_every_items=100)
    service.ingest([5] * 100)
    assert service.query(5) == 100
    assert (service.cache_hits, service.cache_misses) == (0, 1)
    assert service.query(5) == 100
    assert service.cache_hits == 1
    service.ingest([5] * 100)  # publishes epoch 2, invalidating the cache
    assert service.query(5) == 200
    assert service.cache_misses == 2


def test_cache_is_bounded_lru():
    service = make_service(cache_size=4)
    service.ingest(list(range(100)))
    service.flush()
    for key in range(10):
        service.query(key)
    assert len(service._cache) <= 4


def test_cache_can_be_disabled():
    service = make_service(cache_size=0)
    service.ingest([3, 3])
    service.flush()
    assert service.query(3) == 2
    assert (service.cache_hits, service.cache_misses) == (0, 0)


def test_top_k_matches_brute_force():
    service = make_service(name="CM_fast", publish_every_items=10**9)
    stream = zipf_stream(8000, skew=1.3, universe=500, seed=11)
    for chunk in stream.iter_batches(512):
        service.ingest([item.key for item in chunk], [item.value for item in chunk])
    epoch = service.flush()
    ranking = service.top_k(10)
    # brute force over the same candidates against the same frozen epoch
    candidates = list(service._keys)
    estimates = {key: int(value) for key, value in
                 zip(candidates, epoch.sketch.query_batch(candidates))}
    expected = sorted(candidates, key=lambda key: -estimates[key])[:10]
    # ties break by first-contact order (stable sort), matching `expected`
    # because Python's sort is stable over the same candidate order
    assert [key for key, _ in ranking] == expected
    assert all(estimate == estimates[key] for key, estimate in ranking)


def test_top_k_is_cached_per_epoch():
    service = make_service()
    service.ingest(list(range(50)))
    service.flush()
    first = service.top_k(5)
    hits_before = service.cache_hits
    assert service.top_k(5) == first
    assert service.cache_hits == hits_before + 1


def test_top_k_validation():
    service = make_service()
    with pytest.raises(ValueError):
        service.top_k(0)
    untracked = SketchService(build_sketch("CM_fast", MEMORY, seed=0), track_keys=False)
    untracked.ingest([1, 2, 3])
    with pytest.raises(ValueError):
        untracked.top_k(3)


def test_stats_counters():
    service = make_service(publish_every_items=1000)
    service.ingest(list(range(1000)))
    service.ingest(list(range(1000, 2000)))
    service.ingest(list(range(2000, 2500)))
    stats = service.stats()
    assert stats["epoch_id"] == 2
    assert stats["items_ingested"] == 2500
    assert stats["epoch_items"] == 2000
    assert stats["staleness_items"] == 500
    assert stats["publishes"] == 2
    assert stats["distinct_keys_tracked"] == 2500
    assert stats["memory_bytes"] > 0
    assert stats["algorithm"] == "CM"


def test_service_rejects_negative_cache():
    with pytest.raises(ValueError):
        make_service(cache_size=-1)


# ------------------------------------------------------- bounded directory
def test_directory_unbounded_by_default():
    service = make_service(publish_every_items=10**9)
    service.ingest(list(range(5000)))
    assert len(service._keys) == 5000
    assert service.directory_prunes == 0
    assert service.stats()["max_tracked_keys"] is None


def test_directory_prune_waits_for_the_slack():
    # Pruning is amortized: it fires only past cap + max(64, cap // 8), so
    # a directory hovering at the cap is not re-sorted on every batch.
    service = make_service(publish_every_items=10**9, max_tracked_keys=100)
    service.ingest(list(range(160)))
    assert service.directory_prunes == 0
    assert len(service._keys) == 160
    service.ingest(list(range(160, 170)))  # 170 > 100 + 64
    assert service.directory_prunes == 1
    assert len(service._keys) == 100


def test_directory_prune_keeps_the_heaviest_published_keys():
    service = make_service(publish_every_items=10**9, max_tracked_keys=100)
    service.ingest([key for key in range(100) for _ in range(5)])
    service.flush()  # heavy keys are now visible to the pruning rank
    service.ingest(list(range(1000, 1100)))  # 200 tracked > 164 -> prune
    assert service.directory_prunes == 1
    assert set(service._keys) == set(range(100))
    stats = service.stats()
    assert stats["distinct_keys_tracked"] == 100
    assert stats["max_tracked_keys"] == 100
    assert stats["directory_prunes"] == 1


def test_pruned_key_reenters_on_next_ingest():
    service = make_service(publish_every_items=10**9, max_tracked_keys=100)
    service.ingest([key for key in range(100) for _ in range(5)])
    service.flush()
    service.ingest(list(range(1000, 1100)))  # prunes the light keys away
    assert 1000 not in service._keys
    service.ingest([1000])
    assert 1000 in service._keys


def test_directory_prune_preserves_top_k_contract():
    # After pruning, top_k still ranks against the frozen epoch and breaks
    # ties in first-contact order over the surviving candidates.
    service = make_service(publish_every_items=10**9, max_tracked_keys=50)
    stream = zipf_stream(4000, skew=1.3, universe=300, seed=7)
    for chunk in stream.iter_batches(256):
        service.ingest([item.key for item in chunk], [item.value for item in chunk])
        service.flush()
    assert service.directory_prunes > 0  # the scenario actually prunes
    epoch = service.flush()
    ranking = service.top_k(10)
    candidates = list(service._keys)
    estimates = {key: int(value) for key, value in
                 zip(candidates, epoch.sketch.query_batch(candidates))}
    expected = sorted(candidates, key=lambda key: -estimates[key])[:10]
    assert [key for key, _ in ranking] == expected


def test_directory_bound_validation():
    with pytest.raises(ValueError):
        make_service(max_tracked_keys=0)
    with pytest.raises(ValueError):
        make_service(max_tracked_keys=-5)

"""The acceptance property of the serving layer: snapshot-isolated reads.

For every mergeable family plus ReliableSketch, answers served at epoch E
must be bit-identical to querying a frozen copy of the sketch at E —
*including while ingest continues*.  Two harnesses pin it:

* a deterministic interleave (ingest chunk → query → ingest → query ...)
  that compares every served answer against an independently maintained
  frozen reference of the answering epoch;
* a threaded run (one writer thread, several reader threads) asserting the
  same property under real concurrency — no torn reads, ever.
"""

from __future__ import annotations

import copy
import threading

import pytest

from repro.serve.service import SketchService
from repro.sketches.registry import build_sketch, mergeable_names
from repro.streams.synthetic import zipf_stream

MEMORY = 32 * 1024
#: The acceptance matrix: every mergeable family plus ReliableSketch (both
#: variants — with and without the mice filter).
FAMILIES = tuple(mergeable_names()) + ("Ours", "Ours(Raw)")


def make_service(name, publish_every_items=700) -> SketchService:
    return SketchService(
        build_sketch(name, MEMORY, seed=0),
        factory=lambda: build_sketch(name, MEMORY, seed=0),
        publish_every_items=publish_every_items,
    )


@pytest.mark.parametrize("name", FAMILIES)
def test_interleaved_reads_match_frozen_epochs(name):
    """Every answer equals the frozen reference of its epoch, mid-ingest."""
    service = make_service(name)
    # Frozen references, maintained independently of the serving machinery:
    # a deepcopy of every published epoch's replica, keyed by epoch id.
    references = {}
    service._writer._on_publish = _chain(
        service._on_publish,
        lambda epoch: references.__setitem__(epoch.epoch_id, copy.deepcopy(epoch.sketch)),
    )
    references[0] = copy.deepcopy(service.current_epoch.sketch)

    stream = zipf_stream(6000, skew=1.2, universe=900, seed=13)
    probe_keys = stream.keys()[:64] + ["absent", -3]
    for chunk in stream.iter_batches(256):
        service.ingest([item.key for item in chunk], [item.value for item in chunk])
        estimates, epoch_id = service.serve_batch(probe_keys)
        reference = references[epoch_id]
        assert (estimates == reference.query_batch(probe_keys)).all(), (
            f"{name}: answers at epoch {epoch_id} diverged from the frozen copy"
        )
    assert service.current_epoch.epoch_id >= 5  # rotation actually happened


@pytest.mark.parametrize("name", ("CM_fast", "CU_fast", "Ours"))
def test_threaded_ingest_and_query_no_torn_reads(name):
    """Real writer/reader concurrency: every answer matches its epoch."""
    references = {}
    reference_lock = threading.Lock()

    def pin_reference(epoch):
        with reference_lock:
            references[epoch.epoch_id] = copy.deepcopy(epoch.sketch)

    sketch = build_sketch(name, MEMORY, seed=0)
    service = SketchService(sketch, publish_every_items=500)
    # Install the pinning hook before any ingest (epoch 0 predates it).
    service._writer._on_publish = _chain(service._on_publish, pin_reference)
    references[0] = copy.deepcopy(service.current_epoch.sketch)

    stream = zipf_stream(8000, skew=1.1, universe=1200, seed=21)
    probe_keys = stream.keys()[:48]
    failures: list[str] = []
    done = threading.Event()

    def writer():
        for chunk in stream.iter_batches(200):
            service.ingest(
                [item.key for item in chunk], [item.value for item in chunk]
            )
        done.set()

    def reader():
        while True:
            estimates, epoch_id = service.serve_batch(probe_keys)
            with reference_lock:
                reference = references.get(epoch_id)
            if reference is None:
                failures.append(f"unknown epoch {epoch_id}")
                break
            if not (estimates == reference.query_batch(probe_keys)).all():
                failures.append(f"torn read at epoch {epoch_id}")
                break
            if done.is_set():
                break

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(3)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not failures, failures
    assert service.current_epoch.epoch_id >= 10


def _chain(*callbacks):
    def chained(epoch):
        for callback in callbacks:
            callback(epoch)

    return chained

"""Remote serving over the wire: frames, transports, client/server parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.wire import (
    QUERY_FLUSH,
    QUERY_KEYS,
    QUERY_STATS,
    QUERY_TOP_K,
    WireFormatError,
    decode_query_request,
    decode_query_response,
    encode_query_request,
    encode_query_response,
)
from repro.serve.server import ServeConfig, ServingSession
from repro.sketches.registry import build_sketch
from repro.streams.synthetic import zipf_stream

MEMORY = 32 * 1024
TRANSPORTS = ("inproc", "pipe", "tcp")


# ---------------------------------------------------------------- wire frames
def test_query_request_round_trips():
    request = decode_query_request(
        encode_query_request(7, QUERY_KEYS, keys=[1, "flow", b"raw", -9])
    )
    assert request.request_id == 7 and request.kind == QUERY_KEYS
    assert list(request.keys) == [1, "flow", b"raw", -9]

    request = decode_query_request(encode_query_request(8, QUERY_TOP_K, k=12))
    assert (request.kind, request.k) == (QUERY_TOP_K, 12)

    for kind in (QUERY_STATS, QUERY_FLUSH):
        request = decode_query_request(encode_query_request(9, kind))
        assert request.kind == kind and request.keys is None


def test_query_response_round_trips():
    response = decode_query_response(
        encode_query_response(3, QUERY_KEYS, 41, estimates=[5, 0, 2])
    )
    assert (response.request_id, response.epoch_id) == (3, 41)
    assert response.estimates.tolist() == [5, 0, 2]

    response = decode_query_response(
        encode_query_response(4, QUERY_TOP_K, 2, estimates=[9, 7], keys=["hot", 12])
    )
    assert list(response.keys) == ["hot", 12]
    assert response.estimates.tolist() == [9, 7]

    response = decode_query_response(
        encode_query_response(5, QUERY_STATS, 1, stats={"epoch_id": 1})
    )
    assert response.stats == {"epoch_id": 1}

    response = decode_query_response(encode_query_response(6, QUERY_FLUSH, 13))
    assert response.epoch_id == 13


@pytest.mark.parametrize(
    "payload",
    [
        b"",
        b"\x00",
        encode_query_request(1, QUERY_KEYS, keys=[1, 2])[:-1],  # truncated
        encode_query_request(1, QUERY_KEYS, keys=[1, 2]) + b"x",  # trailing
        b"\x00\x00\x00\x01\x63",  # unknown kind 99
    ],
)
def test_malformed_query_requests_raise(payload):
    with pytest.raises(WireFormatError):
        decode_query_request(payload)


def test_query_frame_validation():
    with pytest.raises(WireFormatError):
        encode_query_request(1, QUERY_KEYS)  # missing keys
    with pytest.raises(WireFormatError):
        encode_query_request(1, QUERY_TOP_K, k=0)
    with pytest.raises(WireFormatError):
        encode_query_request(1, 99)
    with pytest.raises(WireFormatError):
        encode_query_response(1, QUERY_TOP_K, 0, estimates=[1], keys=[1, 2])
    with pytest.raises(WireFormatError):
        encode_query_response(1, QUERY_STATS, 0)
    with pytest.raises(WireFormatError):
        decode_query_response(encode_query_response(1, QUERY_KEYS, 0, estimates=[1])[:-2])


# ------------------------------------------------------------- remote parity
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_remote_serving_matches_local_reference(transport):
    """Writes shipped over the wire; the final epoch equals a local twin."""
    stream = zipf_stream(6000, skew=1.1, universe=1500, seed=5)
    reference = build_sketch("CM_fast", MEMORY, seed=0)
    config = ServeConfig("CM_fast", MEMORY, seed=0, publish_every_items=1024)
    with ServingSession(config, transport) as session:
        client = session.client
        for chunk in stream.iter_batches(512):
            keys = [item.key for item in chunk]
            values = [item.value for item in chunk]
            client.ingest(keys, values)
            reference.insert_batch(keys, values)
        client.flush()
        query_keys = stream.keys() + ["missing", -1]
        served, epoch_id = client.query_batch(query_keys)
        assert epoch_id >= 1
        assert (served == reference.query_batch(query_keys)).all()
        # scalar convenience wrapper agrees
        assert client.query(query_keys[0]) == int(served[0])


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_remote_top_k_and_stats(transport):
    stream = zipf_stream(4000, skew=1.4, universe=400, seed=8)
    config = ServeConfig("CU_fast", MEMORY, seed=0, publish_every_items=2048)
    local = ServeConfig("CU_fast", MEMORY, seed=0, publish_every_items=2048).build_service()
    with ServingSession(config, transport) as session:
        client = session.client
        for chunk in stream.iter_batches(512):
            keys = [item.key for item in chunk]
            client.ingest(keys)
            local.ingest(keys)
        client.flush()
        local.flush()
        remote_ranking, _ = client.top_k(8)
        assert remote_ranking == local.top_k(8)
        stats = client.stats()
        assert stats["items_ingested"] == len(stream)
        assert stats["algorithm"] == "CU"


def test_serving_session_serves_reliable_sketch():
    """ReliableSketch (snapshotable, unmergeable) serves remotely too."""
    stream = zipf_stream(5000, skew=1.2, universe=1000, seed=2)
    reference = build_sketch("Ours", MEMORY, seed=0)
    config = ServeConfig("Ours", MEMORY, seed=0, publish_every_items=1024)
    with ServingSession(config, "inproc") as session:
        for chunk in stream.iter_batches(256):
            keys = [item.key for item in chunk]
            session.client.ingest(keys)
            reference.insert_batch(keys)
        session.client.flush()
        served, _ = session.client.query_batch(stream.keys())
    assert (served == reference.query_batch(stream.keys())).all()


def test_sharded_service_over_the_wire():
    """shards > 1 builds the service over a ShardedSketch, still exact."""
    from repro.sketches.sharded import ShardedSketch

    stream = zipf_stream(4000, skew=1.1, universe=900, seed=6)
    reference = ShardedSketch.from_registry("Ours", MEMORY, 2, seed=0)
    config = ServeConfig("Ours", MEMORY, seed=0, shards=2, publish_every_items=1024)
    with ServingSession(config, "inproc") as session:
        for chunk in stream.iter_batches(512):
            keys = [item.key for item in chunk]
            session.client.ingest(keys)
            reference.insert_batch(keys)
        session.client.flush()
        served, _ = session.client.query_batch(stream.keys())
    assert (served == reference.query_batch(stream.keys())).all()


def test_serve_forever_survives_misbehaving_clients(capsys):
    """Garbage bytes end one session, never the server or its state."""
    import socket
    import threading

    from repro.distributed.transport import connect_worker
    from repro.serve.server import QueryClient, serve_forever

    service = ServeConfig("CM_fast", MEMORY, seed=0).build_service()
    service.ingest([7, 7, 7])
    service.flush()
    listener = socket.create_server(("127.0.0.1", 0), backlog=4)
    port = listener.getsockname()[1]
    server = threading.Thread(
        target=serve_forever, args=(listener, service, 2), daemon=True
    )
    server.start()
    try:
        # session 1: a non-protocol peer sends garbage and hangs up
        with socket.create_connection(("127.0.0.1", port)) as rogue:
            rogue.sendall(b"GET / HTTP/1.1\r\n\r\n")
        # session 2: a well-behaved client still gets served, state intact
        client = QueryClient(connect_worker("127.0.0.1", port))
        estimates, _ = client.query_batch([7])
        assert estimates.tolist() == [3]
        client.close()
    finally:
        server.join(timeout=15)
        listener.close()
    assert "client session ended with an error" in capsys.readouterr().out


def test_serve_forever_handles_slowloris_and_truncated_frames(capsys):
    """The sequential loop shares the async server's hostile-client rules:
    a byte-at-a-time client is just slow; a mid-frame disconnect or an
    oversized declared length ends that session only, state intact."""
    import socket
    import struct
    import threading

    from repro.distributed import wire
    from repro.distributed.transport import SocketChannel, connect_worker
    from repro.distributed.wire import MSG_QUERY, QUERY_KEYS
    from repro.serve.server import QueryClient, create_listener, serve_forever

    service = ServeConfig("CM_fast", MEMORY, seed=0).build_service()
    service.ingest([9] * 4)
    service.flush()
    reference = build_sketch("CM_fast", MEMORY, seed=0)
    reference.insert_batch([9] * 4)
    listener = create_listener("127.0.0.1", 0, backlog=4)
    port = listener.getsockname()[1]
    server = threading.Thread(
        target=serve_forever, args=(listener, service, 4), daemon=True
    )
    server.start()
    try:
        # session 1: slowloris — the full frame arrives one byte at a time
        # and is still answered (blocking recv just waits).
        frame = wire.encode_frame(
            MSG_QUERY, wire.encode_query_request(1, QUERY_KEYS, keys=[9])
        )
        slow = socket.create_connection(("127.0.0.1", port), timeout=30.0)
        for byte in frame:
            slow.sendall(bytes([byte]))
        channel = SocketChannel(slow)
        reply = channel.recv()
        assert reply is not None
        _, payload = wire.decode_frame(reply)
        assert wire.decode_query_response(payload).estimates.tolist() == (
            reference.query_batch([9]).tolist()
        )
        channel.close()
        # session 2: disconnect mid-frame — that session errors out.
        with socket.create_connection(("127.0.0.1", port)) as truncated:
            truncated.sendall(frame[:-3])
        # session 3: oversized declared length — rejected at the header.
        with socket.create_connection(("127.0.0.1", port)) as hostile:
            hostile.sendall(
                struct.pack(">2sBBI", wire.MAGIC, wire.WIRE_VERSION,
                            MSG_QUERY, wire.MAX_PAYLOAD_BYTES + 1)
            )
            assert hostile.recv(1) == b""
        # session 4: a well-behaved client is still served, state intact.
        client = QueryClient(connect_worker("127.0.0.1", port))
        estimates, _ = client.query_batch([9])
        assert estimates.tolist() == reference.query_batch([9]).tolist()
        client.close()
    finally:
        server.join(timeout=15)
        listener.close()
    output = capsys.readouterr().out
    assert output.count("client session ended with an error") == 2


def test_epoch_id_is_stable_between_publishes():
    config = ServeConfig("CM_fast", MEMORY, seed=0, publish_every_items=10**9)
    with ServingSession(config, "inproc") as session:
        session.client.ingest([1, 2, 3])
        first, epoch_a = session.client.query_batch([1])
        second, epoch_b = session.client.query_batch([1])
        assert epoch_a == epoch_b == 0
        assert first.tolist() == second.tolist() == [0]
        assert session.client.flush() == 1
        answers, epoch_c = session.client.query_batch([1])
        assert (epoch_c, answers.tolist()) == (1, [1])

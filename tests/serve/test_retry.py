"""BUSY retry and deadline behaviour of the query client.

The server side of admission control (STATUS_BUSY replies under an
in-flight bound) is covered by the serving tests; this file pins the
*client* contract against a scripted channel, so every schedule is
deterministic: backoff delays grow and cap as the policy promises,
rejected requests are retried under fresh request ids, exhaustion is the
typed :class:`ServerBusyError`, and a breached deadline — whether spent
on backoff or on a server that went silent — is the typed
:class:`ServeTimeoutError`, never a hang.
"""

from __future__ import annotations

import random
import time
from collections import deque

import pytest

from repro.distributed.transport import ChannelTimeoutError
from repro.distributed.wire import (
    MSG_QUERY,
    MSG_QUERY_REPLY,
    STATUS_BUSY,
    decode_frame,
    decode_query_request,
    encode_frame,
    encode_query_response,
)
from repro.serve.server import (
    QueryClient,
    RetryPolicy,
    ServerBusyError,
    ServeTimeoutError,
)


class ScriptedChannel:
    """A serving channel whose replies follow a script, not a server.

    The first ``busy_first`` query requests are rejected with
    ``STATUS_BUSY``; every later one is answered OK with estimates
    ``[0, 1, ...]`` and the running request count as its epoch id (so a
    test can see *which* attempt finally got through).  ``silent`` never
    answers at all: a bounded ``recv`` times out the way a dead server's
    would.
    """

    def __init__(self, busy_first: int = 0, silent: bool = False) -> None:
        self.busy_first = busy_first
        self.silent = silent
        self.requests = 0
        self._replies: deque[bytes] = deque()

    def send(self, frame: bytes) -> None:
        msg_type, payload = decode_frame(frame)
        assert msg_type == MSG_QUERY
        request = decode_query_request(payload)
        self.requests += 1
        if self.silent:
            return
        if self.requests <= self.busy_first:
            body = encode_query_response(
                request.request_id, request.kind, 0, status=STATUS_BUSY
            )
        else:
            body = encode_query_response(
                request.request_id,
                request.kind,
                self.requests,
                estimates=list(range(len(request.keys))),
            )
        self._replies.append(encode_frame(MSG_QUERY_REPLY, body))

    def recv(self, timeout: float | None = None) -> bytes | None:
        if self._replies:
            return self._replies.popleft()
        if timeout is None:
            raise AssertionError(
                "unbounded recv with nothing scripted would hang — the "
                "client should only wait on a silent server under a deadline"
            )
        time.sleep(min(timeout, 0.01))
        raise ChannelTimeoutError(f"no frame within {timeout}s")

    def close(self) -> None:  # QueryClient never closes, but be a Channel
        pass


def instant_policy(**overrides) -> RetryPolicy:
    """A policy whose backoff sleeps are all zero — retries are instant."""
    kwargs = {"base_delay": 0.0, "max_delay": 0.0}
    kwargs.update(overrides)
    return RetryPolicy(**kwargs)


# ------------------------------------------------------------------- policy
@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_retries": -1},
        {"base_delay": -0.1},
        {"base_delay": 0.5, "max_delay": 0.1},
        {"multiplier": 0.5},
        {"jitter": 1.5},
        {"jitter": -0.1},
        {"deadline_seconds": 0},
        {"deadline_seconds": -1.0},
    ],
)
def test_policy_validation(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


def test_delay_grows_exponentially_and_caps():
    policy = RetryPolicy(base_delay=0.001, max_delay=0.016, multiplier=2.0, jitter=0.0)
    rng = random.Random(0)
    delays = [policy.delay(attempt, rng) for attempt in range(8)]
    assert delays[:5] == [0.001, 0.002, 0.004, 0.008, 0.016]
    assert all(delay == 0.016 for delay in delays[4:])  # capped, not growing


def test_jitter_only_shrinks_and_is_seeded():
    policy = RetryPolicy(base_delay=0.01, max_delay=0.08, jitter=0.5)
    raw = RetryPolicy(base_delay=0.01, max_delay=0.08, jitter=0.0)
    delays = [policy.delay(attempt, random.Random(7)) for attempt in range(6)]
    ceilings = [raw.delay(attempt, random.Random(7)) for attempt in range(6)]
    for delay, ceiling in zip(delays, ceilings):
        # Jitter shrinks by at most the jitter fraction, never grows: the
        # backoff ceiling is what bounds worst-case latency.
        assert ceiling * 0.5 <= delay <= ceiling
    # Same seed, same jitter draws — retry schedules are reproducible.
    again = [policy.delay(attempt, random.Random(7)) for attempt in range(6)]
    assert delays == again


# ------------------------------------------------------------ single queries
def test_busy_replies_absorbed_then_answered():
    channel = ScriptedChannel(busy_first=3)
    client = QueryClient(channel, instant_policy())
    estimates, epoch = client.query_batch(["a", "b"])
    assert estimates.tolist() == [0, 1]
    assert client.busy_retries == 3
    # Each retry is a fresh request (fresh id), not a resend of the old one.
    assert channel.requests == 4
    assert epoch == 4  # the 4th request is the one that got through


def test_retry_budget_exhaustion_is_typed():
    channel = ScriptedChannel(busy_first=10_000)
    client = QueryClient(channel, instant_policy(max_retries=2))
    with pytest.raises(ServerBusyError):
        client.query_batch(["a"])
    assert channel.requests == 3  # the original attempt plus two retries
    assert client.busy_retries == 2


def test_zero_retries_fails_on_first_busy():
    channel = ScriptedChannel(busy_first=1)
    client = QueryClient(channel, instant_policy(max_retries=0))
    with pytest.raises(ServerBusyError):
        client.query_batch(["a"])
    assert client.busy_retries == 0


def test_silent_server_breaches_deadline_not_hangs():
    channel = ScriptedChannel(silent=True)
    client = QueryClient(channel, RetryPolicy(deadline_seconds=0.05))
    start = time.monotonic()
    with pytest.raises(ServeTimeoutError):
        client.query_batch(["a"])
    assert time.monotonic() - start < 5.0


def test_busy_storm_spends_the_deadline_then_times_out():
    channel = ScriptedChannel(busy_first=10_000)
    client = QueryClient(
        channel,
        RetryPolicy(
            max_retries=None,  # unbounded attempts: only the deadline stops us
            base_delay=0.002,
            max_delay=0.01,
            deadline_seconds=0.05,
        ),
    )
    with pytest.raises(ServeTimeoutError):
        client.query_batch(["a"])
    assert client.busy_retries > 0  # it did back off and retry before giving up


# ---------------------------------------------------------------- pipelining
def test_pipelined_busy_reenqueue_preserves_order():
    batches = [[f"k{i}-{j}" for j in range(i + 1)] for i in range(5)]
    channel = ScriptedChannel(busy_first=3)
    client = QueryClient(channel, instant_policy())
    results = client.query_batches_pipelined(batches, max_inflight=2)
    assert len(results) == len(batches)
    for index, (estimates, _) in enumerate(results):
        # Order by original batch index, regardless of which got rejected.
        assert estimates.tolist() == list(range(len(batches[index])))
    assert client.busy_retries == 3
    assert channel.requests == len(batches) + 3


def test_pipelined_busy_budget_exhaustion_is_typed():
    channel = ScriptedChannel(busy_first=10_000)
    client = QueryClient(channel, instant_policy())
    with pytest.raises(ServerBusyError):
        client.query_batches_pipelined([["a"], ["b"]], max_inflight=2, busy_retries=3)
    assert client.busy_retries == 3


def test_pipelined_deadline_on_silent_server():
    channel = ScriptedChannel(silent=True)
    client = QueryClient(channel, RetryPolicy(deadline_seconds=0.05))
    with pytest.raises(ServeTimeoutError):
        client.query_batches_pipelined([["a"], ["b"]], max_inflight=2)


def test_default_policy_is_attached():
    client = QueryClient(ScriptedChannel())
    assert client.retry_policy.max_retries is not None
    assert client.retry_policy.deadline_seconds is None
    assert client.busy_retries == 0

"""Batch/scalar equivalence: the core contract of the batch-first datapath.

For every sketch with a vectorized ``insert_batch`` / ``query_batch``
(ReliableSketch with and without mice filter, CM, CU, Count, Elastic,
Coco, HashPipe, PRECISION) and for the default fallback loop, feeding the same stream through the batch API in any
chunking must leave the sketch in a state indistinguishable from the scalar
loop: identical estimates for every key (present or absent), identical
hash-call accounting, and — for ReliableSketch — identical failure and
per-layer settling statistics.
"""

from __future__ import annotations

import random

import pytest

from repro.core import ReliableSketch
from repro.kernels import available_backends, use_backend
from repro.sketches.cm import CountMinSketch
from repro.sketches.coco import CocoSketch
from repro.sketches.count import CountSketch
from repro.sketches.cu import CUSketch
from repro.sketches.elastic import ElasticSketch
from repro.sketches.hashpipe import HashPipe
from repro.sketches.precision import Precision
from repro.sketches.sharded import ShardedSketch
from repro.sketches.spacesaving import SpaceSaving
from repro.streams import Stream, zipf_stream


@pytest.fixture(params=available_backends())
def kernel_backend(request):
    """Run a test under each available update-kernel backend.

    The order-dependent sketches (CU, ReliableSketch, Elastic) bind a
    kernel at construction; the equivalence contract must hold for every
    backend, not just the default.
    """
    with use_backend(request.param):
        yield request.param


def random_stream(seed: int, count: int = 1500, universe: int = 400) -> Stream:
    """A weighted random stream mixing int and string keys."""
    rng = random.Random(seed)
    items = []
    for _ in range(count):
        key: object = rng.randrange(universe)
        if rng.random() < 0.15:
            key = f"flow-{rng.randrange(universe // 4)}"
        items.append((key, rng.randrange(1, 6)))
    return Stream(items, name=f"random-{seed}")


BUILDERS = {
    "Ours": lambda seed: ReliableSketch.from_memory(2048, tolerance=25, seed=seed),
    "Ours(Raw)": lambda seed: ReliableSketch.from_memory(
        2048, tolerance=25, seed=seed, use_mice_filter=False
    ),
    "Ours(emergency)": lambda seed: ReliableSketch.from_memory(
        1024, tolerance=10, seed=seed, use_emergency=True
    ),
    "CM": lambda seed: CountMinSketch(4096, depth=3, seed=seed),
    "CU": lambda seed: CUSketch(4096, depth=3, seed=seed),
    "Count": lambda seed: CountSketch(4096, depth=3, seed=seed),
    # Elastic vectorizes the heavy-part hash only; the bucket state machine
    # replays in stream order (order-dependent evictions).
    "Elastic": lambda seed: ElasticSketch(2048, seed=seed),
    # SpaceSaving has no vectorized override: exercises the base fallback.
    "SS": lambda seed: SpaceSaving(2048),
    # Pipeline competitors on the kernel subsystem: probabilistic
    # replacement, eviction walks and probabilistic recirculation — all
    # order-dependent, all bound to the active kernel backend.
    "Coco": lambda seed: CocoSketch(2048, seed=seed),
    "HashPipe": lambda seed: HashPipe(2048, seed=seed),
    "PRECISION": lambda seed: Precision(2048, seed=seed),
    # The sharded wrapper must itself honour the equivalence contract,
    # including its partition-hash accounting.
    "Sharded(CM)": lambda seed: ShardedSketch.from_registry(
        "CM_fast", 4096, shards=3, seed=seed
    ),
}

# Chunk size 1 degenerates to the scalar loop through the batch machinery;
# the last entry exceeds every test stream (single-chunk case).
CHUNK_SIZES = [1, 7, 256, 10_000]


def fill_scalar(sketch, stream):
    for key, value in stream:
        sketch.insert(key, value)


def fill_batched(sketch, stream, chunk_size):
    for chunk in stream.iter_batches(chunk_size):
        sketch.insert_batch(
            [item.key for item in chunk], [item.value for item in chunk]
        )


def query_keys(stream):
    """All present keys plus keys the stream never saw."""
    return stream.keys() + [10**9 + i for i in range(25)] + ["absent", b"absent"]


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
@pytest.mark.parametrize("name", sorted(BUILDERS))
@pytest.mark.parametrize("stream_seed,sketch_seed", [(1, 0), (2, 9)])
def test_insert_and_query_batch_match_scalar(
    name, chunk_size, stream_seed, sketch_seed, kernel_backend
):
    stream = random_stream(stream_seed)
    scalar = BUILDERS[name](sketch_seed)
    batched = BUILDERS[name](sketch_seed)

    fill_scalar(scalar, stream)
    fill_batched(batched, stream, chunk_size)
    assert scalar.hash_calls() == batched.hash_calls(), "insert hash accounting"

    keys = query_keys(stream)
    scalar_estimates = [int(scalar.query(key)) for key in keys]
    batched_estimates = batched.query_batch(keys).tolist()
    assert scalar_estimates == batched_estimates
    assert scalar.hash_calls() == batched.hash_calls(), "query hash accounting"


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
@pytest.mark.parametrize("use_filter", [True, False])
def test_reliable_sketch_statistics_match(chunk_size, use_filter, kernel_backend):
    stream = zipf_stream(3000, skew=1.2, universe=500, seed=11)
    build = lambda: ReliableSketch.from_memory(
        1024, tolerance=10, seed=4, use_mice_filter=use_filter
    )
    scalar, batched = build(), build()
    fill_scalar(scalar, stream)
    fill_batched(batched, stream, chunk_size)

    assert scalar.insert_failures == batched.insert_failures
    assert scalar.failed_value == batched.failed_value
    assert scalar.inserts_settled_per_layer == batched.inserts_settled_per_layer
    assert scalar.operation_counts() == batched.operation_counts()
    assert scalar.layer_occupancy() == batched.layer_occupancy()
    assert scalar.locked_buckets() == batched.locked_buckets()


def test_query_batch_counts_queries():
    sketch = ReliableSketch.from_memory(1024, tolerance=25, seed=0)
    sketch.insert_batch(list(range(50)))
    sketch.query_batch(list(range(30)))
    inserts, queries = sketch.operation_counts()
    assert inserts == 50
    assert queries == 30


def test_mixed_key_types_in_one_batch():
    keys = [1, "one", b"one", 2**40, -5, 0]
    scalar = CountMinSketch(1024, depth=3, seed=1)
    batched = CountMinSketch(1024, depth=3, seed=1)
    for key in keys:
        scalar.insert(key, 3)
    batched.insert_batch(keys, 3)
    assert [scalar.query(key) for key in keys] == batched.query_batch(keys).tolist()


def test_insert_batch_default_and_scalar_values():
    for values in (None, 2):
        scalar = CUSketch(1024, depth=3, seed=1)
        batched = CUSketch(1024, depth=3, seed=1)
        keys = [i % 17 for i in range(200)]
        for key in keys:
            scalar.insert(key, 1 if values is None else values)
        batched.insert_batch(keys, values)
        assert [scalar.query(k) for k in range(17)] == batched.query_batch(list(range(17))).tolist()


def test_insert_batch_rejects_non_positive_values():
    for sketch in (
        CountMinSketch(1024, seed=0),
        CUSketch(1024, seed=0),
        CountSketch(1024, seed=0),
        ReliableSketch.from_memory(1024, tolerance=25, seed=0),
    ):
        with pytest.raises(ValueError):
            sketch.insert_batch([1, 2, 3], [1, 0, 1])


def test_insert_batch_rejects_mismatched_lengths():
    with pytest.raises(ValueError):
        CountMinSketch(1024, seed=0).insert_batch([1, 2, 3], [1, 2])
    # The default fallback loop must enforce the same contract instead of
    # silently zip-truncating (regression).
    with pytest.raises(ValueError):
        SpaceSaving(2048).insert_batch([1, 2, 3], [1, 2])


@pytest.mark.parametrize("depth", [3, 4])
def test_count_sketch_query_batch_exact_beyond_float53(depth):
    # Regression: np.median went through float64 and rounded estimates
    # above 2^53; the integer median must stay bit-identical to the scalar
    # statistics.median path.
    huge = 2**55 + 3
    scalar = CountSketch(4096, depth=depth, seed=2)
    batched = CountSketch(4096, depth=depth, seed=2)
    scalar.insert(7, huge)
    batched.insert_batch([7], [huge])
    assert scalar.query(7) == batched.query_batch([7])[0]
    assert batched.query_batch([7])[0] > 2**53  # the value actually exercises the range


def test_insert_stream_batched_equals_scalar():
    stream = random_stream(5, count=800)
    scalar = ReliableSketch.from_memory(1024, tolerance=25, seed=3)
    batched = ReliableSketch.from_memory(1024, tolerance=25, seed=3)
    scalar.insert_stream(stream)
    batched.insert_stream(stream, batch_size=64)
    keys = query_keys(stream)
    assert [scalar.query(k) for k in keys] == batched.query_batch(keys).tolist()

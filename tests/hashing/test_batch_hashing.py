"""Vectorized hashing: bit-identity with the scalar murmur, batch mechanics."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.hashing import (
    EncodedKeyBatch,
    HashFamily,
    encode_keys,
    key_to_bytes,
    murmur3_32,
    murmur3_32_fixed_batch,
)


def mixed_keys(seed: int, count: int = 400) -> list[object]:
    rng = random.Random(seed)
    keys: list[object] = []
    for _ in range(count):
        choice = rng.random()
        if choice < 0.4:
            keys.append(rng.randrange(0, 2**31))
        elif choice < 0.6:
            keys.append(rng.randrange(2**31, 2**62))
        elif choice < 0.7:
            keys.append(-rng.randrange(1, 2**30))
        elif choice < 0.85:
            keys.append("key-%d" % rng.randrange(10**6))
        else:
            keys.append(bytes(rng.randrange(256) for _ in range(rng.randrange(0, 9))))
    return keys


class TestMurmurBatchKernel:
    @pytest.mark.parametrize("length", list(range(0, 13)))
    @pytest.mark.parametrize("seed", [0, 1, 0xDEADBEEF])
    def test_bit_identical_to_scalar_for_every_length(self, length, seed):
        rng = random.Random(length * 1000 + seed)
        rows = [bytes(rng.randrange(256) for _ in range(length)) for _ in range(64)]
        matrix = np.frombuffer(b"".join(rows), dtype=np.uint8).reshape(64, length)
        batch_hashes = murmur3_32_fixed_batch(matrix, seed)
        assert batch_hashes.dtype == np.uint32
        assert batch_hashes.tolist() == [murmur3_32(row, seed) for row in rows]

    def test_rejects_non_matrix_input(self):
        with pytest.raises(ValueError):
            murmur3_32_fixed_batch(np.zeros(8, dtype=np.uint8), 0)


class TestEncodedKeyBatch:
    def test_encodings_match_key_to_bytes(self):
        keys = mixed_keys(1)
        batch = EncodedKeyBatch(keys)
        assert batch.encoded == [key_to_bytes(key) for key in keys]
        assert encode_keys(keys) == batch.encoded

    def test_int_fast_path_matches_generic_encoding(self):
        keys = [0, 1, 2**31 - 1, 12345]
        fast = EncodedKeyBatch(keys)  # stays on the vectorized int path
        groups = fast.groups
        assert len(groups) == 1
        positions, matrix = groups[0]
        assert matrix.shape == (len(keys), 4)
        rebuilt = [matrix[row].tobytes() for row in positions.argsort()]
        # positions are 0..n-1 in order on the fast path
        assert positions.tolist() == list(range(len(keys)))
        assert rebuilt == [key_to_bytes(key) for key in keys]

    def test_take_preserves_keys_and_hashes(self):
        keys = mixed_keys(2)
        batch = EncodedKeyBatch(keys)
        fn = HashFamily(3).draw(101)
        full = fn.raw_batch(batch)
        sub = batch.take([0, 5, 17, 399])
        assert sub.keys == [keys[0], keys[5], keys[17], keys[399]]
        assert fn.raw_batch(sub).tolist() == [int(full[i]) for i in (0, 5, 17, 399)]

    def test_numpy_array_input(self):
        array = np.arange(100, dtype=np.int64)
        batch = EncodedKeyBatch(array)
        assert batch.keys == list(range(100))
        fn = HashFamily(0).draw(64)
        assert fn.index_batch(batch).tolist() == [
            murmur3_32(key_to_bytes(int(k)), fn.seed) % 64 for k in array
        ]

    def test_empty_batch(self):
        batch = EncodedKeyBatch([])
        fn = HashFamily(0).draw(8)
        assert fn.raw_batch(batch).tolist() == []
        assert fn.index_batch(batch).tolist() == []


class TestBatchHashFunctions:
    def test_raw_and_index_match_scalar(self):
        keys = mixed_keys(3)
        batch = EncodedKeyBatch(keys)
        family = HashFamily(7)
        fn = family.draw(997)
        assert fn.raw_batch(batch).tolist() == [
            murmur3_32(key_to_bytes(key), fn.seed) for key in keys
        ]
        fresh = HashFamily(7).draw(997)  # same seed, untouched counter
        assert fn.index_batch(batch).tolist() == [fresh(key) for key in keys]

    def test_sign_batch_matches_scalar(self):
        keys = mixed_keys(4)
        batch = EncodedKeyBatch(keys)
        sign_a = HashFamily(9).draw_sign()
        sign_b = HashFamily(9).draw_sign()
        batch_signs = sign_a.sign_batch(batch)
        assert set(batch_signs.tolist()) <= {-1, 1}
        assert batch_signs.tolist() == [sign_b(key) for key in keys]

    def test_call_counter_advances_by_batch_size(self):
        keys = mixed_keys(5, count=123)
        batch = EncodedKeyBatch(keys)
        fn = HashFamily(1).draw(10)
        fn.raw_batch(batch)
        assert fn.calls == 123
        fn.index_batch(batch)
        assert fn.calls == 246

    def test_raw_batch_without_width(self):
        fn = HashFamily(2).draw()  # width=None: raw values pass through
        batch = EncodedKeyBatch([1, 2, 3])
        assert fn.index_batch(batch).tolist() == fn.raw_batch(batch).tolist()

"""MurmurHash3 correctness: reference vectors, determinism, avalanche."""

from __future__ import annotations

import pytest

from repro.hashing.murmur import murmur3_32

# Published reference vectors of the x86 32-bit MurmurHash3 variant.
REFERENCE_VECTORS = [
    (b"", 0x00000000, 0x00000000),
    (b"", 0x00000001, 0x514E28B7),
    (b"", 0xFFFFFFFF, 0x81F16F39),
    (b"\x00\x00\x00\x00", 0x00000000, 0x2362F9DE),
    (b"hello", 0x00000000, 0x248BFA47),
    (b"hello, world", 0x00000000, 0x149BBB7F),
    (b"The quick brown fox jumps over the lazy dog", 0x00000000, 0x2E4FF723),
    (b"aaaa", 0x9747B28C, 0x5A97808A),
]


@pytest.mark.parametrize("data,seed,expected", REFERENCE_VECTORS)
def test_reference_vectors(data, seed, expected):
    assert murmur3_32(data, seed) == expected


def test_deterministic_across_calls():
    assert murmur3_32(b"determinism", 1234) == murmur3_32(b"determinism", 1234)


def test_output_is_32_bit():
    for i in range(200):
        value = murmur3_32(f"key-{i}".encode(), seed=i)
        assert 0 <= value < 2**32


def test_seed_changes_output():
    data = b"same-key"
    outputs = {murmur3_32(data, seed) for seed in range(50)}
    # Different seeds should virtually never collide on the same input.
    assert len(outputs) >= 49


def test_single_bit_flip_changes_output():
    base = bytearray(b"avalanche-test-input")
    reference = murmur3_32(bytes(base), 0)
    changed = 0
    for byte_index in range(len(base)):
        flipped = bytearray(base)
        flipped[byte_index] ^= 0x01
        if murmur3_32(bytes(flipped), 0) != reference:
            changed += 1
    assert changed == len(base)


@pytest.mark.parametrize("length", [1, 2, 3, 4, 5, 6, 7, 8, 13, 16, 31])
def test_all_tail_lengths_handled(length):
    data = bytes(range(length))
    value = murmur3_32(data, 99)
    assert 0 <= value < 2**32
    # Appending a byte must change the hash (no silent truncation of tails).
    assert murmur3_32(data + b"\x01", 99) != value


def test_uniformity_over_small_range():
    width = 16
    buckets = [0] * width
    samples = 8000
    for i in range(samples):
        buckets[murmur3_32(f"uniform-{i}".encode(), 0) % width] += 1
    expected = samples / width
    for count in buckets:
        assert abs(count - expected) < expected * 0.25

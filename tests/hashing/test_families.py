"""Hash families: key normalisation, independence, call counting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hashing.families import (
    HashFamily,
    HashFunction,
    SignHashFunction,
    derive_seed,
    key_to_bytes,
)


class TestKeyToBytes:
    def test_bytes_pass_through(self):
        assert key_to_bytes(b"abc") == b"abc"

    def test_string_encoded(self):
        assert key_to_bytes("abc") == b"abc"

    def test_int_minimum_width(self):
        assert len(key_to_bytes(0)) >= 4
        assert len(key_to_bytes(1)) >= 4

    def test_int_distinct_from_negative(self):
        assert key_to_bytes(5) != key_to_bytes(-5)

    def test_large_int_roundtrip_distinct(self):
        values = [2**40 + i for i in range(100)]
        encodings = {key_to_bytes(v) for v in values}
        assert len(encodings) == len(values)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            key_to_bytes(3.14)

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_int_encoding_is_injective_vs_zero(self, value):
        if value != 0:
            assert key_to_bytes(value) != key_to_bytes(0)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(123, 4) == derive_seed(123, 4)

    def test_distinct_indices_give_distinct_seeds(self):
        seeds = {derive_seed(7, i) for i in range(64)}
        assert len(seeds) == 64

    def test_distinct_masters_give_distinct_seeds(self):
        assert derive_seed(1, 0) != derive_seed(2, 0)

    def test_fits_in_32_bits(self):
        for i in range(100):
            assert 0 <= derive_seed(999, i) < 2**32


class TestHashFunction:
    def test_maps_into_width(self):
        fn = HashFunction(seed=1, width=17)
        for i in range(500):
            assert 0 <= fn(i) < 17

    def test_counts_calls(self):
        fn = HashFunction(seed=1, width=8)
        for i in range(25):
            fn(i)
        assert fn.calls == 25
        fn.reset_counter()
        assert fn.calls == 0

    def test_raw_without_width(self):
        fn = HashFunction(seed=3)
        assert 0 <= fn("x") < 2**32

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            HashFunction(seed=1, width=0)

    def test_same_seed_same_mapping(self):
        a = HashFunction(seed=5, width=100)
        b = HashFunction(seed=5, width=100)
        assert [a(i) for i in range(50)] == [b(i) for i in range(50)]


class TestSignHash:
    def test_only_plus_minus_one(self):
        fn = SignHashFunction(seed=11)
        values = {fn(i) for i in range(200)}
        assert values == {-1, 1}

    def test_roughly_balanced(self):
        fn = SignHashFunction(seed=13)
        total = sum(fn(i) for i in range(4000))
        assert abs(total) < 400


class TestHashFamily:
    def test_draws_are_independent(self):
        family = HashFamily(master_seed=9)
        first = family.draw(width=1000)
        second = family.draw(width=1000)
        collisions = sum(1 for i in range(500) if first(i) == second(i))
        # Two independent functions agree on ~1/1000 of keys, not most of them.
        assert collisions < 20

    def test_total_calls_aggregates(self):
        family = HashFamily(master_seed=2)
        functions = family.draw_many(3, width=10)
        for fn in functions:
            for i in range(7):
                fn(i)
        assert family.total_calls() == 21
        family.reset_counters()
        assert family.total_calls() == 0

    def test_reproducible_from_master_seed(self):
        family_a = HashFamily(master_seed=77)
        family_b = HashFamily(master_seed=77)
        fn_a = family_a.draw(width=64)
        fn_b = family_b.draw(width=64)
        assert [fn_a(k) for k in "abcdef"] == [fn_b(k) for k in "abcdef"]

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=2, max_value=1000))
    def test_any_seed_width_combination_is_valid(self, seed, width):
        fn = HashFamily(seed).draw(width)
        assert 0 <= fn("probe") < width

"""FPGA model: Table 3 reproduction and scaling behaviour."""

from __future__ import annotations

import pytest

from repro.core.config import ReliableConfig
from repro.hardware.fpga import (
    CLOCK_MHZ,
    DEVICE_BRAM_TILES,
    DEVICE_LUTS,
    INSERT_LATENCY_CYCLES,
    FpgaModel,
)
from repro.metrics.memory import mb


@pytest.fixture(scope="module")
def default_report():
    config = ReliableConfig.from_memory(mb(1), tolerance=25.0)
    return FpgaModel().synthesize(config)


def test_module_names_match_paper(default_report):
    assert [m.module for m in default_report.modules] == ["Hash", "ESbucket", "Emergency"]


def test_per_module_lut_and_register_counts_match_table3(default_report):
    by_name = {m.module: m for m in default_report.modules}
    assert (by_name["Hash"].clb_luts, by_name["Hash"].clb_registers) == (85, 130)
    assert (by_name["ESbucket"].clb_luts, by_name["ESbucket"].clb_registers) == (2521, 2592)
    assert (by_name["Emergency"].clb_luts, by_name["Emergency"].clb_registers) == (48, 112)


def test_totals_match_table3(default_report):
    assert default_report.total_luts == 85 + 2521 + 48 == 2654
    assert default_report.total_registers == 130 + 2592 + 112 == 2834


def test_bram_close_to_published_value(default_report):
    # Table 3 reports 259 tiles for the default configuration.
    assert default_report.total_bram == pytest.approx(259, rel=0.15)


def test_utilisation_fractions(default_report):
    assert default_report.lut_utilisation == pytest.approx(2654 / DEVICE_LUTS)
    assert 0.0 < default_report.bram_utilisation < 0.25


def test_clock_and_latency_constants(default_report):
    assert default_report.clock_mhz == CLOCK_MHZ == 340.0
    assert default_report.insert_latency_cycles == INSERT_LATENCY_CYCLES == 41
    assert default_report.throughput_mops == pytest.approx(340.0)


def test_bram_scales_with_memory():
    small = FpgaModel().synthesize(ReliableConfig.from_memory(mb(0.25), tolerance=25.0))
    large = FpgaModel().synthesize(ReliableConfig.from_memory(mb(4), tolerance=25.0))
    assert large.total_bram > small.total_bram * 8


def test_fits_device_for_reasonable_sizes():
    model = FpgaModel()
    assert model.fits(ReliableConfig.from_memory(mb(1), tolerance=25.0))
    # A sketch larger than the device's total BRAM must not fit.
    oversized = ReliableConfig.from_memory(DEVICE_BRAM_TILES * 4608 * 4, tolerance=25.0)
    assert not model.fits(oversized)


def test_rows_include_total_line(default_report):
    rows = default_report.rows()
    assert rows[-1]["Module"] == "Total"
    assert rows[-1]["CLB LUTs"] == default_report.total_luts


def test_pipeline_processing_report():
    report = FpgaModel().process(1_000_000)
    assert report.throughput_mops == pytest.approx(340.0, rel=0.01)

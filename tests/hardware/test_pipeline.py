"""Pipeline model: latency/throughput arithmetic."""

from __future__ import annotations

import pytest

from repro.hardware.pipeline import PipelineModel, PipelineReport


def test_peak_throughput_is_clock_rate():
    model = PipelineModel(clock_mhz=340.0, latency_cycles=41)
    assert model.peak_throughput_mops == pytest.approx(340.0)


def test_total_cycles_is_fill_plus_stream():
    report = PipelineModel(100.0, 10).process(1_000)
    assert report.total_cycles == 10 + 999


def test_throughput_approaches_peak_for_long_bursts():
    model = PipelineModel(clock_mhz=340.0, latency_cycles=41)
    long_burst = model.process(10_000_000)
    assert long_burst.throughput_mops == pytest.approx(340.0, rel=0.001)


def test_short_burst_dominated_by_latency():
    model = PipelineModel(clock_mhz=340.0, latency_cycles=41)
    tiny = model.process(1)
    assert tiny.total_cycles == 41
    assert tiny.throughput_mops < 340.0 / 10


def test_zero_operations_valid():
    report = PipelineModel(340.0, 41).process(0)
    assert report.total_cycles == 0
    assert report.throughput_mops == 0.0


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        PipelineModel(0.0, 41)
    with pytest.raises(ValueError):
        PipelineModel(340.0, 0)
    with pytest.raises(ValueError):
        PipelineModel(340.0, 41).process(-1)


def test_seconds_consistent_with_cycles():
    report = PipelineReport(operations=100, clock_mhz=100.0, latency_cycles=10)
    assert report.seconds == pytest.approx(report.total_cycles / 100e6)

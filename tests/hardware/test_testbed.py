"""Testbed deployment: byte-volume replay, rate conversion, SRAM sweeps."""

from __future__ import annotations

import pytest

from repro.hardware.testbed import LINK_SPEED_BPS, TestbedDeployment


@pytest.fixture(scope="module")
def deployment():
    return TestbedDeployment(trace_name="hadoop", scale=0.002, seed=1)


def test_stream_uses_byte_values(deployment):
    values = {item.value for item in deployment.stream[:500]}
    assert max(values) > 100  # byte volumes, not unit counts


def test_replay_time_follows_link_speed(deployment):
    expected = deployment.stream.total_value() * 8 / LINK_SPEED_BPS
    assert deployment.replay_seconds == pytest.approx(expected)


def test_default_tolerance_scales_with_packet_size(deployment):
    mean_packet = deployment.stream.total_value() / len(deployment.stream)
    assert deployment.tolerance_bytes == pytest.approx(25 * mean_packet)


def test_run_reports_all_fields(deployment):
    result = deployment.run(sram_bytes=4 * 1024)
    assert result.sram_bytes == 4 * 1024
    assert result.outliers >= 0
    assert result.aae_bytes >= 0
    assert result.aae_kbps >= 0
    assert result.replay_seconds > 0


def test_more_sram_means_fewer_or_equal_outliers(deployment):
    low = deployment.run(sram_bytes=512)
    high = deployment.run(sram_bytes=16 * 1024)
    assert high.outliers <= low.outliers
    assert high.aae_bytes <= low.aae_bytes


def test_sweep_returns_one_result_per_size(deployment):
    sizes = [1024.0, 2048.0, 4096.0]
    results = deployment.sweep(sizes)
    assert [r.sram_bytes for r in results] == sizes


def test_kbps_conversion_consistent(deployment):
    result = deployment.run(sram_bytes=2048)
    expected_kbps = result.aae_bytes * 8 / deployment.replay_seconds / 1e3
    assert result.aae_kbps == pytest.approx(expected_kbps)

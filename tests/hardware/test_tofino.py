"""Tofino model: Table 4 reproduction and the constrained data-plane sketch."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ReliableConfig
from repro.hardware.tofino import (
    PAPER_USAGE,
    DataPlaneReliableSketch,
    TofinoResourceModel,
)


class TestResourceModel:
    def test_default_matches_table4(self):
        usage = TofinoResourceModel(layers=6).usage()
        assert usage == PAPER_USAGE

    def test_percentages_match_table4(self):
        rows = {row.resource: row for row in TofinoResourceModel(layers=6).rows()}
        assert rows["Stateful ALU"].percentage == pytest.approx(0.25, abs=0.001)
        assert rows["Map RAM"].percentage == pytest.approx(0.2066, abs=0.001)
        assert rows["SRAM"].percentage == pytest.approx(0.1437, abs=0.001)
        assert rows["TCAM"].usage == 0

    def test_usage_scales_with_layers(self):
        small = TofinoResourceModel(layers=3).usage()
        large = TofinoResourceModel(layers=12).usage()
        assert small["Stateful ALU"] == 6
        assert large["Stateful ALU"] == 24

    def test_fits_within_one_pipeline(self):
        assert TofinoResourceModel(layers=6).fits()
        # 24 layers would need 48 SALUs = the entire pipeline; still "fits",
        # but more than that must not.
        assert not TofinoResourceModel(layers=30).fits()

    def test_invalid_layer_count_rejected(self):
        with pytest.raises(ValueError):
            TofinoResourceModel(layers=0)


class TestDataPlaneSketch:
    def make(self, sram_bytes=8 * 1024, tolerance=25.0, seed=1):
        return DataPlaneReliableSketch.from_sram(sram_bytes, tolerance=tolerance, seed=seed)

    def test_single_key_exact(self):
        sketch = self.make()
        sketch.insert("solo", 123)
        assert sketch.query("solo") == 123

    def test_matching_key_accumulates(self):
        sketch = self.make()
        for _ in range(50):
            sketch.insert("flow", 2)
        assert sketch.query("flow") == 100

    def test_value_validation(self):
        with pytest.raises(ValueError):
            self.make().insert("x", 0)

    def test_recirculations_counted_under_pressure(self, small_ip_trace):
        sketch = self.make(sram_bytes=1024)
        sketch.insert_stream(small_ip_trace)
        assert sketch.recirculations > 0

    def test_accuracy_improves_with_sram(self, small_ip_trace):
        truth = small_ip_trace.counts()

        def total_error(sram):
            sketch = self.make(sram_bytes=sram, seed=3)
            sketch.insert_stream(small_ip_trace)
            return sum(abs(sketch.query(k) - v) for k, v in truth.items())

        assert total_error(16 * 1024) < total_error(1 * 1024)

    def test_memory_accounting(self):
        sketch = self.make(sram_bytes=4096)
        assert sketch.memory_bytes() <= 4096 * 1.05
        assert sketch.parameters()["depth"] >= 1

    def test_no_mice_filter_in_data_plane(self):
        config = self.make().config
        assert not config.use_mice_filter

    @given(
        st.lists(st.tuples(st.integers(0, 40), st.integers(1, 12)), max_size=300),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_estimates_never_negative(self, sequence, seed):
        config = ReliableConfig.build(total_buckets=64, tolerance=25, depth=6)
        sketch = DataPlaneReliableSketch(config, seed=seed)
        truth: Counter = Counter()
        for key, value in sequence:
            sketch.insert(key, value)
            truth[key] += value
        for key in truth:
            assert sketch.query(key) >= 0

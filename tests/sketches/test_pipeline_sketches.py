"""Coco, HashPipe and PRECISION: the switch-oriented competitor sketches."""

from __future__ import annotations

import pytest

from repro.sketches.coco import CocoSketch
from repro.sketches.hashpipe import HashPipe
from repro.sketches.precision import Precision


class TestCoco:
    def test_exact_for_isolated_key(self):
        sketch = CocoSketch(16 * 1024, seed=1)
        sketch.insert("solo", 42)
        assert sketch.query("solo") == 42

    def test_deterministic_given_seed(self, small_zipf_stream):
        a = CocoSketch(8 * 1024, seed=7)
        b = CocoSketch(8 * 1024, seed=7)
        a.insert_stream(small_zipf_stream)
        b.insert_stream(small_zipf_stream)
        keys = list(small_zipf_stream.counts())[:100]
        assert [a.query(k) for k in keys] == [b.query(k) for k in keys]

    def test_heavy_keys_tracked(self, small_zipf_stream):
        sketch = CocoSketch(24 * 1024, seed=2)
        sketch.insert_stream(small_zipf_stream)
        truth = small_zipf_stream.counts()
        top = sorted(truth, key=truth.get, reverse=True)[:5]
        for key in top:
            assert sketch.query(key) > 0

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            CocoSketch(1024, depth=0)


class TestHashPipe:
    def test_exact_for_isolated_key(self):
        sketch = HashPipe(16 * 1024, seed=1)
        sketch.insert("solo", 9)
        assert sketch.query("solo") == 9

    def test_first_stage_always_admits(self):
        sketch = HashPipe(4 * 1024, depth=2, seed=3)
        sketch.insert("a", 100)
        sketch.insert("b", 1)
        # Whatever the collision layout, the newly arriving key is always
        # present somewhere right after its insertion.
        assert sketch.query("b") >= 1

    def test_duplicates_summed_across_stages(self, small_zipf_stream):
        sketch = HashPipe(16 * 1024, seed=4)
        sketch.insert_stream(small_zipf_stream)
        truth = small_zipf_stream.counts()
        top = max(truth, key=truth.get)
        # The heaviest key must be tracked within a reasonable margin.
        assert sketch.query(top) >= truth[top] * 0.5

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            HashPipe(1024, depth=0)


class TestPrecision:
    def test_exact_for_isolated_key(self):
        sketch = Precision(16 * 1024, seed=1)
        sketch.insert("solo", 3)
        assert sketch.query("solo") == 3

    def test_matched_key_always_counted(self):
        sketch = Precision(8 * 1024, seed=2)
        for _ in range(200):
            sketch.insert("steady")
        assert sketch.query("steady") >= 190  # admitted early, then exact

    def test_recirculations_are_counted(self, small_zipf_stream):
        sketch = Precision(2 * 1024, seed=5)
        sketch.insert_stream(small_zipf_stream)
        assert sketch.recirculations > 0

    def test_never_negative_estimates(self, small_zipf_stream):
        sketch = Precision(4 * 1024, seed=6)
        sketch.insert_stream(small_zipf_stream)
        for key in list(small_zipf_stream.counts())[:200]:
            assert sketch.query(key) >= 0

    def test_heavy_keys_tracked(self, small_zipf_stream):
        sketch = Precision(24 * 1024, seed=7)
        sketch.insert_stream(small_zipf_stream)
        truth = small_zipf_stream.counts()
        top = sorted(truth, key=truth.get, reverse=True)[:3]
        for key in top:
            assert sketch.query(key) >= truth[key] * 0.5

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            Precision(1024, depth=0)

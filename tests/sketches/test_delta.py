"""The delta contract: subtract/state_delta are the exact inverse of merge.

CM and Count tables are linear in the inserted multiset, so subtracting an
earlier snapshot of the *same stream* must reproduce, bit for bit, a fresh
sketch fed only the items in between.  CU merges but cannot subtract (its
merge is an upper bound), and the capability flags/registry probes must
say so.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches.base import UnmergeableSketchError
from repro.sketches.cm import CountMinSketch
from repro.sketches.count import CountSketch
from repro.sketches.cu import CUSketch
from repro.sketches.registry import build_sketch, delta_names, supports_deltas

MEMORY = 16 * 1024

PAIRS = st.lists(
    st.tuples(st.integers(0, 40), st.integers(1, 9)), min_size=1, max_size=120
)


def _fill(sketch, pairs):
    for key, value in pairs:
        sketch.insert(key, value)
    return sketch


@pytest.mark.parametrize("family", [CountMinSketch, CountSketch])
class TestSubtractExactness:
    def test_subtract_inverts_merge(self, family):
        left = _fill(family(MEMORY, depth=3, seed=5), [(i, i + 1) for i in range(30)])
        right = _fill(family(MEMORY, depth=3, seed=5), [(i * 7, 2) for i in range(30)])
        merged = _fill(family(MEMORY, depth=3, seed=5), [(i, i + 1) for i in range(30)])
        merged.merge(right)
        merged.subtract(right)
        assert np.array_equal(merged._tables, left._tables)

    def test_state_delta_equals_fresh_fill(self, family):
        prefix = [(i % 11, 1) for i in range(200)]
        suffix = [(i % 7, 3) for i in range(150)]
        running = _fill(family(MEMORY, depth=3, seed=9), prefix)
        earlier = running.state_snapshot()
        _fill(running, suffix)
        delta = running.state_delta(earlier)
        fresh = _fill(family(MEMORY, depth=3, seed=9), suffix)
        assert np.array_equal(delta["tables"], fresh._tables)

    def test_subtract_checks_peer_shape(self, family):
        sketch = family(MEMORY, depth=3, seed=1)
        other = family(MEMORY, depth=4, seed=1)
        with pytest.raises(ValueError):
            sketch.subtract(other)

    def test_subtract_checks_seeds(self, family):
        sketch = family(MEMORY, depth=3, seed=1)
        other = family(MEMORY, depth=3, seed=2)
        with pytest.raises(ValueError):
            sketch.subtract(other)

    @given(split=st.integers(1, 119), pairs=PAIRS)
    @settings(max_examples=25, deadline=None)
    def test_subtract_property(self, family, split, pairs):
        prefix, suffix = pairs[:split], pairs[split:]
        earlier = _fill(family(MEMORY, depth=3, seed=3), prefix)
        later = _fill(family(MEMORY, depth=3, seed=3), prefix)
        _fill(later, suffix)
        later.subtract(earlier)
        fresh = _fill(family(MEMORY, depth=3, seed=3), suffix)
        assert np.array_equal(later._tables, fresh._tables)


class TestCapabilityFlags:
    def test_cm_count_subtractable(self):
        assert CountMinSketch(MEMORY).subtractable
        assert CountSketch(MEMORY).subtractable

    def test_cu_not_subtractable(self):
        assert not CUSketch(MEMORY).subtractable

    def test_cu_subtract_raises(self):
        sketch = CUSketch(MEMORY, seed=1)
        other = CUSketch(MEMORY, seed=1)
        with pytest.raises(UnmergeableSketchError):
            sketch.subtract(other)
        with pytest.raises(UnmergeableSketchError):
            sketch.state_delta(other.state_snapshot())

    def test_registry_probe(self):
        assert supports_deltas("CM_fast")
        assert supports_deltas("Count")
        assert not supports_deltas("CU_fast")

    def test_delta_names_are_subtractable(self):
        names = delta_names()
        assert "CM_fast" in names and "Count" in names
        for name in names:
            assert build_sketch(name, 1024.0, seed=0).subtractable

    def test_subtractable_implies_mergeable(self):
        # subtractable is strictly stronger than mergeable: every family
        # advertising deltas must also merge.
        for name in delta_names():
            assert build_sketch(name, 1024.0, seed=0).mergeable

"""Space Saving: eviction semantics, bounds, top-k, memory sizing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches.spacesaving import SpaceSaving


def test_exact_below_capacity():
    summary = SpaceSaving(capacity=10)
    for key, count in [("a", 5), ("b", 3), ("c", 7)]:
        for _ in range(count):
            summary.insert(key)
    assert summary.query("a") == 5
    assert summary.query("b") == 3
    assert summary.query("c") == 7
    assert summary.query("missing") == 0


def test_eviction_adopts_minimum_counter():
    summary = SpaceSaving(capacity=2)
    summary.insert("a", 10)
    summary.insert("b", 3)
    summary.insert("c", 1)  # evicts b (min=3), adopts 3+1=4
    assert summary.query("c") == 4
    assert summary.query("b") == 0
    assert summary.guaranteed_count("c") == 1  # count - inherited error


def test_never_underestimates_monitored_keys(small_zipf_stream):
    summary = SpaceSaving(capacity=256)
    summary.insert_stream(small_zipf_stream)
    truth = small_zipf_stream.counts()
    for key in summary.monitored_keys():
        assert summary.query(key) >= truth.get(key, 0)


def test_heavy_hitters_are_retained(small_zipf_stream):
    summary = SpaceSaving(capacity=200)
    summary.insert_stream(small_zipf_stream)
    truth = small_zipf_stream.counts()
    top_true = sorted(truth, key=truth.get, reverse=True)[:10]
    monitored = set(summary.monitored_keys())
    assert all(key in monitored for key in top_true)


def test_top_k_ordering():
    summary = SpaceSaving(capacity=16)
    for key, count in [("x", 30), ("y", 20), ("z", 10)]:
        summary.insert(key, count)
    top = summary.top_k(2)
    assert top[0] == ("x", 30)
    assert top[1] == ("y", 20)


def test_capacity_from_memory_budget():
    summary = SpaceSaving(memory_bytes=2000)
    assert summary.capacity == 100  # 20 bytes per entry
    assert summary.memory_bytes() == pytest.approx(2000)


def test_requires_capacity_or_memory():
    with pytest.raises(ValueError):
        SpaceSaving()
    with pytest.raises(ValueError):
        SpaceSaving(capacity=0)


def test_monitored_never_exceeds_capacity(small_zipf_stream):
    summary = SpaceSaving(capacity=64)
    summary.insert_stream(small_zipf_stream)
    assert len(summary.monitored_keys()) <= 64


@given(st.lists(st.tuples(st.integers(0, 40), st.integers(1, 10)), min_size=1, max_size=300))
@settings(max_examples=40, deadline=None)
def test_overestimate_bounded_by_total_over_capacity(pairs):
    """Classic SS guarantee: error <= N / capacity for every key."""
    capacity = 8
    summary = SpaceSaving(capacity=capacity)
    truth: dict[int, int] = {}
    total = 0
    for key, value in pairs:
        summary.insert(key, value)
        truth[key] = truth.get(key, 0) + value
        total += value
    for key, value in truth.items():
        estimate = summary.query(key)
        if estimate:
            assert value <= estimate <= value + total // capacity + max(v for _, v in pairs)

"""Properties every sketch in the registry must satisfy.

These tests run against all registered algorithms at once: they cannot check
accuracy guarantees (those differ per family) but they pin down the shared
contract of the :class:`repro.sketches.base.Sketch` interface.
"""

from __future__ import annotations

import pytest

from repro.metrics.accuracy import evaluate_accuracy
from repro.sketches.registry import build_sketch, competitor_names

ALL_ALGORITHMS = competitor_names()
MEMORY = 16 * 1024


@pytest.fixture(scope="module", params=ALL_ALGORITHMS)
def filled_sketch(request, small_zipf_stream):
    """Each registered algorithm, filled with the shared Zipf stream."""
    sketch = build_sketch(request.param, MEMORY, seed=1)
    sketch.insert_stream(small_zipf_stream)
    return request.param, sketch, small_zipf_stream


def test_every_algorithm_is_registered_and_buildable():
    for name in ALL_ALGORITHMS:
        sketch = build_sketch(name, MEMORY, seed=0)
        assert sketch.memory_bytes() > 0


def test_rejects_unknown_algorithm():
    with pytest.raises(ValueError, match="unknown sketch"):
        build_sketch("NotASketch", MEMORY)


def test_rejects_unknown_competitor_group():
    with pytest.raises(ValueError, match="unknown competitor group"):
        competitor_names("nope")


def test_competitor_groups_reference_registered_names():
    for group in ("outliers", "frequent", "error", "speed"):
        for name in competitor_names(group):
            assert name in ALL_ALGORITHMS


def test_query_returns_nonnegative_int(filled_sketch):
    name, sketch, stream = filled_sketch
    for key in list(stream.counts())[:200]:
        estimate = sketch.query(key)
        assert isinstance(estimate, int)
        assert estimate >= 0


def test_unseen_key_estimate_is_bounded(filled_sketch):
    name, sketch, stream = filled_sketch
    # A key that never appeared can be overestimated, but its estimate should
    # not exceed the whole stream's value (a trivially sound upper bound).
    estimate = sketch.query("never-inserted-key-424242")
    assert 0 <= estimate <= stream.total_value()


def test_memory_budget_not_grossly_exceeded(filled_sketch):
    name, sketch, stream = filled_sketch
    # Constructors floor the entry count, so they fit the budget up to one
    # entry of slack.
    assert sketch.memory_bytes() <= MEMORY * 1.05


def test_rejects_nonpositive_value(filled_sketch):
    name, sketch, stream = filled_sketch
    with pytest.raises(ValueError):
        sketch.insert("key", 0)
    with pytest.raises(ValueError):
        sketch.insert("key", -3)


def test_describe_reports_name_and_memory(filled_sketch):
    name, sketch, stream = filled_sketch
    description = sketch.describe()
    assert description.memory_bytes == sketch.memory_bytes()
    assert isinstance(description.parameters, dict)


def test_weighted_and_unit_inserts_are_equivalent_in_total():
    for name in ALL_ALGORITHMS:
        weighted = build_sketch(name, MEMORY, seed=3)
        weighted.insert("flow", 10)
        repeated = build_sketch(name, MEMORY, seed=3)
        for _ in range(10):
            repeated.insert("flow", 1)
        # A single key with no collisions must be counted exactly by every
        # algorithm, whether inserted in one weighted update or ten unit ones.
        assert weighted.query("flow") == repeated.query("flow") == 10


def test_more_memory_never_hurts_much(small_zipf_stream):
    """Doubling memory should not make accuracy dramatically worse."""
    for name in ("CM_fast", "CU_fast", "Elastic", "Ours"):
        small = build_sketch(name, 8 * 1024, seed=2)
        large = build_sketch(name, 64 * 1024, seed=2)
        small.insert_stream(small_zipf_stream)
        large.insert_stream(small_zipf_stream)
        truth = small_zipf_stream.counts()
        aae_small = evaluate_accuracy(truth, small.query, 25).aae
        aae_large = evaluate_accuracy(truth, large.query, 25).aae
        assert aae_large <= aae_small + 1.0

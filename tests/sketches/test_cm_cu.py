"""Count-Min and CU sketches: overestimation, conservative update, sizing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.memory import COUNTER_32
from repro.sketches.cm import CountMinSketch
from repro.sketches.cu import CUSketch


class TestCountMin:
    def test_never_underestimates(self, small_zipf_stream):
        sketch = CountMinSketch(8 * 1024, depth=3, seed=1)
        sketch.insert_stream(small_zipf_stream)
        for key, truth in small_zipf_stream.counts().items():
            assert sketch.query(key) >= truth

    def test_exact_without_collisions(self):
        sketch = CountMinSketch(64 * 1024, depth=4, seed=2)
        sketch.insert("only-key", 17)
        assert sketch.query("only-key") == 17

    def test_width_derived_from_memory(self):
        memory = 12_000
        sketch = CountMinSketch(memory, depth=3)
        assert sketch.width == COUNTER_32.entries_for(memory) // 3
        assert sketch.memory_bytes() <= memory

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(1024, depth=0)

    def test_hash_calls_per_insert_equal_depth(self):
        sketch = CountMinSketch(4096, depth=5, seed=3)
        sketch.reset_hash_calls()
        for i in range(10):
            sketch.insert(i)
        assert sketch.hash_calls() == 50

    def test_parameters_reported(self):
        sketch = CountMinSketch(4096, depth=3)
        assert sketch.parameters() == {"depth": 3, "width": sketch.width}

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 20)), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_upper_bound_property(self, pairs):
        sketch = CountMinSketch(2048, depth=3, seed=7)
        truth: dict[int, int] = {}
        for key, value in pairs:
            sketch.insert(key, value)
            truth[key] = truth.get(key, 0) + value
        for key, value in truth.items():
            assert sketch.query(key) >= value


class TestCU:
    def test_never_underestimates(self, small_zipf_stream):
        sketch = CUSketch(8 * 1024, depth=3, seed=1)
        sketch.insert_stream(small_zipf_stream)
        for key, truth in small_zipf_stream.counts().items():
            assert sketch.query(key) >= truth

    def test_at_least_as_accurate_as_cm(self, small_zipf_stream):
        memory = 6 * 1024
        cm = CountMinSketch(memory, depth=3, seed=5)
        cu = CUSketch(memory, depth=3, seed=5)
        cm.insert_stream(small_zipf_stream)
        cu.insert_stream(small_zipf_stream)
        truth = small_zipf_stream.counts()
        cm_error = sum(cm.query(k) - v for k, v in truth.items())
        cu_error = sum(cu.query(k) - v for k, v in truth.items())
        assert cu_error <= cm_error

    def test_conservative_update_leaves_larger_counters_alone(self):
        sketch = CUSketch(4096, depth=2, seed=9)
        # Key A becomes heavy; colliding key B must only lift the minimum.
        for _ in range(100):
            sketch.insert("A")
        before = sketch.query("A")
        sketch.insert("B", 1)
        assert sketch.query("A") <= before + 1

    def test_exact_without_collisions(self):
        sketch = CUSketch(64 * 1024, depth=4, seed=2)
        sketch.insert("only-key", 5)
        sketch.insert("only-key", 7)
        assert sketch.query("only-key") == 12

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            CUSketch(1024, depth=-1)

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 20)), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_upper_bound_property(self, pairs):
        sketch = CUSketch(2048, depth=3, seed=11)
        truth: dict[int, int] = {}
        for key, value in pairs:
            sketch.insert(key, value)
            truth[key] = truth.get(key, 0) + value
        for key, value in truth.items():
            assert sketch.query(key) >= value

"""Frequent (Misra-Gries): underestimation bound and decrement semantics."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st
import pytest

from repro.sketches.frequent import FrequentSketch


def test_exact_below_capacity():
    sketch = FrequentSketch(capacity=8)
    for key, count in [("a", 4), ("b", 2)]:
        for _ in range(count):
            sketch.insert(key)
    assert sketch.query("a") == 4
    assert sketch.query("b") == 2


def test_never_overestimates(small_zipf_stream):
    sketch = FrequentSketch(capacity=128)
    sketch.insert_stream(small_zipf_stream)
    truth = small_zipf_stream.counts()
    for key in truth:
        assert sketch.query(key) <= truth[key]


def test_underestimate_bounded_by_decrements(small_zipf_stream):
    sketch = FrequentSketch(capacity=128)
    sketch.insert_stream(small_zipf_stream)
    truth = small_zipf_stream.counts()
    for key, value in truth.items():
        assert value - sketch.query(key) <= sketch.decremented_total


def test_global_decrement_on_full_summary():
    sketch = FrequentSketch(capacity=2)
    sketch.insert("a", 5)
    sketch.insert("b", 5)
    sketch.insert("c", 2)  # decrements everyone by 2, c not admitted
    assert sketch.query("a") == 3
    assert sketch.query("b") == 3
    assert sketch.query("c") == 0
    assert sketch.decremented_total == 2


def test_heavy_key_survives_many_light_keys():
    sketch = FrequentSketch(capacity=4)
    sketch.insert("heavy", 1_000)
    for i in range(300):
        sketch.insert(f"light-{i}", 1)
    assert sketch.query("heavy") >= 1_000 - 300


def test_capacity_from_memory():
    sketch = FrequentSketch(memory_bytes=800)
    assert sketch.capacity == 100  # 8 bytes per (key, counter) pair


def test_requires_capacity_or_memory():
    with pytest.raises(ValueError):
        FrequentSketch()


def test_monitored_keys_bounded():
    sketch = FrequentSketch(capacity=3)
    for i in range(50):
        sketch.insert(i)
    assert len(sketch.monitored_keys()) <= 3


@given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 8)), min_size=1, max_size=250))
@settings(max_examples=40, deadline=None)
def test_misra_gries_error_bound(pairs):
    """The textbook bound: underestimate <= total / (capacity + 1) (unit-ish values)."""
    capacity = 9
    sketch = FrequentSketch(capacity=capacity)
    truth: dict[int, int] = {}
    total = 0
    max_value = 0
    for key, value in pairs:
        sketch.insert(key, value)
        truth[key] = truth.get(key, 0) + value
        total += value
        max_value = max(max_value, value)
    for key, value in truth.items():
        estimate = sketch.query(key)
        assert estimate <= value
        assert value - estimate <= total / (capacity + 1) + max_value

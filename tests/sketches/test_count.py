"""Count sketch: unbiased median estimation and sign hashing."""

from __future__ import annotations

import pytest

from repro.sketches.count import CountSketch


def test_exact_without_collisions():
    sketch = CountSketch(64 * 1024, depth=5, seed=1)
    sketch.insert("lonely", 9)
    assert sketch.query("lonely") == 9


def test_estimate_clamped_to_zero():
    sketch = CountSketch(1024, depth=3, seed=2)
    for i in range(500):
        sketch.insert(f"other-{i}", 3)
    # A never-inserted key can get a negative signed estimate; the public
    # query clamps it because value sums are non-negative.
    assert sketch.query("absent") >= 0


def test_reasonable_accuracy_on_heavy_keys(small_zipf_stream):
    sketch = CountSketch(16 * 1024, depth=5, seed=3)
    sketch.insert_stream(small_zipf_stream)
    truth = small_zipf_stream.counts()
    heavy = sorted(truth, key=truth.get, reverse=True)[:10]
    for key in heavy:
        assert abs(sketch.query(key) - truth[key]) <= max(25, truth[key] * 0.2)


def test_depth_validation():
    with pytest.raises(ValueError):
        CountSketch(1024, depth=0)


def test_value_validation():
    sketch = CountSketch(1024, depth=3)
    with pytest.raises(ValueError):
        sketch.insert("x", 0)


def test_errors_roughly_centered(small_zipf_stream):
    """Unlike CM, the Count sketch under- and over-estimates about equally."""
    sketch = CountSketch(8 * 1024, depth=5, seed=4)
    sketch.insert_stream(small_zipf_stream)
    truth = small_zipf_stream.counts()
    signed = [sketch.query(key) - value for key, value in truth.items()]
    over = sum(1 for e in signed if e > 0)
    under = sum(1 for e in signed if e < 0)
    # Both directions must occur; CM-style one-sided error would fail this.
    assert over > 0 and under > 0

"""Shard/merge semantics: the contract of the sharded-ingest subsystem.

Two properties pin the design:

* **Routing exactness** — a :class:`ShardedSketch` (any shard count,
  including S=1) answers every query bit-identically to manually running S
  scalar sketches and routing each item by hand with the same partition
  function.  This holds for *every* registered sketch, order-dependent ones
  included, because a key's whole history lands on one shard in stream
  order.
* **Merge exactness** — for CM/Count, ``merge_shards()`` equals a single
  sketch fed the full stream; unmergeable sketches raise
  ``UnmergeableSketchError``; CU merges carry a documented upper-bound
  guarantee.
"""

from __future__ import annotations

import random

import pytest

from repro.sketches import (
    ShardedSketch,
    UnmergeableSketchError,
    build_sketch,
    competitor_names,
    is_mergeable,
    mergeable_names,
)

MEMORY = 4096
SEED = 2


def mixed_stream(seed: int, count: int = 600, universe: int = 150) -> list[tuple[object, int]]:
    """A weighted stream mixing int and string keys."""
    rng = random.Random(seed)
    items: list[tuple[object, int]] = []
    for _ in range(count):
        key: object = rng.randrange(universe)
        if rng.random() < 0.2:
            key = f"flow-{rng.randrange(universe // 3)}"
        items.append((key, rng.randrange(1, 5)))
    return items


def query_keys(items) -> list[object]:
    """All present keys plus keys the stream never saw."""
    present = sorted({key for key, _ in items}, key=str)
    return present + ["absent", b"absent", 10**9]


def fill_batched(sketch, items, chunk_size: int = 64) -> None:
    for start in range(0, len(items), chunk_size):
        chunk = items[start : start + chunk_size]
        sketch.insert_batch([key for key, _ in chunk], [value for _, value in chunk])


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("name", sorted(competitor_names()))
def test_sharded_equals_routing_by_hand(name, shards):
    """Batch-sharded queries match S scalar sketches with hand-routed items."""
    items = mixed_stream(3)
    sharded = ShardedSketch.from_registry(name, MEMORY, shards, seed=SEED)
    manual = [build_sketch(name, MEMORY, seed=SEED) for _ in range(shards)]

    fill_batched(sharded, items)
    for key, value in items:
        manual[sharded.shard_of(key)].insert(key, value)

    keys = query_keys(items)
    batched = sharded.query_batch(keys).tolist()
    by_hand = [int(manual[sharded.shard_of(key)].query(key)) for key in keys]
    assert batched == by_hand
    # Scalar queries agree with the batch path too.
    assert [int(sharded.query(key)) for key in keys] == by_hand


@pytest.mark.parametrize("name", ["CM_fast", "Ours", "CU_fast"])
@pytest.mark.parametrize("chunk_size", [1, 7, 10_000])
def test_sharded_batch_scalar_equivalence(name, chunk_size):
    """ShardedSketch itself honours the batch/scalar equivalence contract."""
    items = mixed_stream(5)
    scalar = ShardedSketch.from_registry(name, MEMORY, 3, seed=1)
    batched = ShardedSketch.from_registry(name, MEMORY, 3, seed=1)

    for key, value in items:
        scalar.insert(key, value)
    fill_batched(batched, items, chunk_size)
    assert scalar.hash_calls() == batched.hash_calls(), "insert hash accounting"

    keys = query_keys(items)
    assert [scalar.query(key) for key in keys] == batched.query_batch(keys).tolist()
    assert scalar.hash_calls() == batched.hash_calls(), "query hash accounting"


@pytest.mark.parametrize("shards", [1, 3])
@pytest.mark.parametrize("name", ["CM_fast", "CM_acc", "Count"])
def test_merged_shards_equal_single_sketch(name, shards):
    """CM/Count shard merging is bit-identical to one full-stream sketch."""
    items = mixed_stream(7)
    sharded = ShardedSketch.from_registry(name, MEMORY, shards, seed=SEED)
    single = build_sketch(name, MEMORY, seed=SEED)

    fill_batched(sharded, items)
    for key, value in items:
        single.insert(key, value)

    merged = sharded.merge_shards()
    keys = query_keys(items)
    assert [merged.query(key) for key in keys] == [single.query(key) for key in keys]
    # Deep equality of the tables, not just the queried projection.
    assert (merged._tables == single._tables).all()
    # merge_shards returns a fresh sketch: the sharded instance stays usable.
    assert sharded.query_batch(keys).shape == (len(keys),)


def test_cu_merge_upper_bounds_sharded_queries():
    """CU shard merging never underestimates the routed (exact-shard) answer."""
    items = mixed_stream(9)
    sharded = ShardedSketch.from_registry("CU_fast", MEMORY, 3, seed=SEED)
    fill_batched(sharded, items)
    merged = sharded.merge_shards()
    keys = query_keys(items)
    routed = sharded.query_batch(keys).tolist()
    for key, routed_estimate in zip(keys, routed):
        assert merged.query(key) >= routed_estimate


def test_capability_flags_match_classes():
    assert set(mergeable_names()) == {"CM_fast", "CM_acc", "CU_fast", "CU_acc", "Count"}
    assert is_mergeable("CM_fast")
    assert not is_mergeable("Ours")
    assert not is_mergeable("Elastic")


def test_unmergeable_families_raise():
    sharded = ShardedSketch.from_registry("Elastic", MEMORY, 2, seed=0)
    sharded.insert_batch([1, 2, 3])
    with pytest.raises(UnmergeableSketchError):
        sharded.merge_shards()
    with pytest.raises(UnmergeableSketchError):
        build_sketch("SS", MEMORY).merge(build_sketch("SS", MEMORY))


def test_merge_rejects_mismatched_peers():
    cm3 = build_sketch("CM_fast", MEMORY, seed=0)
    with pytest.raises(ValueError):
        cm3.merge(build_sketch("CM_acc", MEMORY, seed=0))  # depth mismatch
    with pytest.raises(ValueError):
        cm3.merge(build_sketch("CM_fast", MEMORY, seed=1))  # seed mismatch
    with pytest.raises(ValueError):
        cm3.merge(build_sketch("Count", MEMORY, seed=0))  # class mismatch


def test_sharded_tree_merge():
    """Two ShardedSketches over the same partition merge shard-by-shard."""
    items = mixed_stream(11)
    half = len(items) // 2
    left = ShardedSketch.from_registry("CM_fast", MEMORY, 3, seed=SEED)
    right = ShardedSketch.from_registry("CM_fast", MEMORY, 3, seed=SEED)
    whole = ShardedSketch.from_registry("CM_fast", MEMORY, 3, seed=SEED)

    fill_batched(left, items[:half])
    fill_batched(right, items[half:])
    fill_batched(whole, items)

    left.merge(right)
    keys = query_keys(items)
    assert left.query_batch(keys).tolist() == whole.query_batch(keys).tolist()
    assert left.items_per_shard.tolist() == whole.items_per_shard.tolist()

    mismatched = ShardedSketch.from_registry("CM_fast", MEMORY, 2, seed=SEED)
    with pytest.raises(ValueError):
        left.merge(mismatched)


def test_sharded_validation():
    with pytest.raises(ValueError):
        ShardedSketch([])
    with pytest.raises(ValueError):
        ShardedSketch.from_registry("CM_fast", MEMORY, 0)
    sketch = ShardedSketch.from_registry("CM_fast", MEMORY, 2)
    with pytest.raises(ValueError):
        sketch.insert(1, 0)
    with pytest.raises(ValueError):
        sketch.insert_batch([1, 2], [1, 0])


def test_per_shard_item_accounting():
    items = mixed_stream(13)
    sharded = ShardedSketch.from_registry("CM_fast", MEMORY, 4, seed=SEED)
    fill_batched(sharded, items)
    assert int(sharded.items_per_shard.sum()) == len(items)
    # Accounting matches the partition function exactly.
    expected = [0, 0, 0, 0]
    for key, _ in items:
        expected[sharded.shard_of(key)] += 1
    assert sharded.items_per_shard.tolist() == expected


def test_memory_and_parameters_reporting():
    sharded = ShardedSketch.from_registry("CM_fast", MEMORY, 3, seed=0)
    single = build_sketch("CM_fast", MEMORY, seed=0)
    assert sharded.memory_bytes() == pytest.approx(3 * single.memory_bytes())
    parameters = sharded.parameters()
    assert parameters["shards"] == 3
    assert parameters["algorithm"] == "CM"
    assert sharded.name == "Sharded[CMx3]"

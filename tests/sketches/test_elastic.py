"""Elastic sketch: heavy/light split, eviction behaviour, accuracy."""

from __future__ import annotations

import pytest

from repro.sketches.elastic import ElasticSketch


def test_memory_split_follows_light_ratio():
    sketch = ElasticSketch(32 * 1024, light_ratio=3.0)
    heavy_bytes = sketch.heavy_width * 13  # 104-bit heavy buckets
    light_bytes = sketch.light_width * 1   # 8-bit light counters
    assert light_bytes == pytest.approx(3 * heavy_bytes, rel=0.1)
    assert sketch.memory_bytes() <= 32 * 1024 * 1.05


def test_exact_for_isolated_heavy_key():
    sketch = ElasticSketch(32 * 1024, seed=1)
    sketch.insert("vip", 500)
    assert sketch.query("vip") == 500


def test_heavy_key_estimate_close_to_truth(small_zipf_stream):
    sketch = ElasticSketch(24 * 1024, seed=2)
    sketch.insert_stream(small_zipf_stream)
    truth = small_zipf_stream.counts()
    top = sorted(truth, key=truth.get, reverse=True)[:5]
    for key in top:
        assert abs(sketch.query(key) - truth[key]) <= max(30, truth[key] * 0.2)


def test_eviction_moves_incumbent_to_light_part():
    sketch = ElasticSketch(16 * 1024, eviction_ratio=2, seed=3)
    sketch.insert("old", 2)
    # Find a key colliding with "old" in the heavy part, then make it dominant.
    collider = None
    for i in range(20_000):
        candidate = f"cand-{i}"
        if sketch._heavy_hash(candidate) == sketch._heavy_hash("old") and candidate != "old":
            collider = candidate
            break
    assert collider is not None
    for _ in range(50):
        sketch.insert(collider)
    # The collider should now own the heavy bucket, and "old" must still be
    # queryable (from the light part), not silently lost.
    assert sketch.query(collider) >= 40
    assert sketch.query("old") >= 1


def test_light_part_counters_saturate():
    sketch = ElasticSketch(4 * 1024, seed=4)
    for _ in range(5):
        sketch.insert("heavy-light", 300)
    # 8-bit light counters cap at 255, so estimates for light-part keys are
    # bounded even under overflow pressure.
    assert sketch._light_query("heavy-light") <= 255


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ElasticSketch(1024, light_ratio=0)
    with pytest.raises(ValueError):
        ElasticSketch(1024, eviction_ratio=0)


def test_value_validation():
    sketch = ElasticSketch(1024)
    with pytest.raises(ValueError):
        sketch.insert("x", -1)


def test_hash_call_accounting():
    sketch = ElasticSketch(8 * 1024, seed=5)
    sketch.reset_hash_calls()
    sketch.insert("a")
    assert sketch.hash_calls() >= 1

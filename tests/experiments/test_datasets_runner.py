"""Experiment plumbing: dataset registry, runner, memory searches."""

from __future__ import annotations

import pytest

from repro.experiments.datasets import dataset, dataset_names, scaled_memory_points
from repro.experiments.runner import (
    ExperimentSettings,
    minimum_memory_for_target_aae,
    minimum_memory_for_zero_outliers,
    run_competitors,
    run_sketch,
)
from repro.metrics.memory import BYTES_PER_MB

SCALE = 0.001


class TestDatasets:
    def test_all_names_resolve(self):
        for name in dataset_names():
            stream = dataset(name, scale=SCALE, seed=1)
            assert len(stream) > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            dataset("nope", scale=SCALE)
        with pytest.raises(ValueError):
            dataset("zipf-notanumber", scale=SCALE)

    def test_caching_returns_same_object(self):
        a = dataset("ip", scale=SCALE, seed=2)
        b = dataset("ip", scale=SCALE, seed=2)
        assert a is b

    def test_zipf_skew_parsed_from_name(self):
        low = dataset("zipf-0.3", scale=SCALE, seed=3)
        high = dataset("zipf-3.0", scale=SCALE, seed=3)
        assert max(high.counts().values()) > max(low.counts().values())

    def test_scaled_memory_points(self):
        points = scaled_memory_points([1.0, 2.0], scale=0.01)
        assert points[0] == pytest.approx(0.01 * BYTES_PER_MB)
        assert points[1] == pytest.approx(0.02 * BYTES_PER_MB)
        # Tiny scales are floored so sketches stay constructible.
        assert scaled_memory_points([0.001], scale=0.001)[0] >= 512


class TestRunner:
    def test_run_sketch_reports_accuracy(self):
        stream = dataset("ip", scale=SCALE, seed=1)
        run = run_sketch("CM_fast", 8 * 1024, stream, ExperimentSettings(tolerance=25))
        assert run.algorithm == "CM_fast"
        assert run.outliers >= 0
        assert run.aae >= 0
        assert run.report.evaluated_keys == stream.distinct_keys()

    def test_run_competitors_covers_all_names(self):
        stream = dataset("ip", scale=SCALE, seed=1)
        runs = run_competitors(("Ours", "CM_fast"), 8 * 1024, stream)
        assert set(runs) == {"Ours", "CM_fast"}

    def test_key_restriction_passed_through(self):
        stream = dataset("ip", scale=SCALE, seed=1)
        frequent = stream.frequent_keys(50)
        run = run_sketch("Ours", 8 * 1024, stream, keys=frequent)
        assert run.report.evaluated_keys == len(frequent)

    def test_zero_outlier_memory_search_finds_reliable_threshold(self):
        stream = dataset("ip", scale=SCALE, seed=1)
        memory = minimum_memory_for_zero_outliers(
            "Ours", stream, ExperimentSettings(tolerance=25, seed=1),
            low_bytes=512, high_bytes=64 * 1024,
        )
        assert memory is not None
        # The found budget must indeed produce zero outliers.
        assert run_sketch("Ours", memory, stream, ExperimentSettings(tolerance=25, seed=1)).outliers == 0

    def test_search_returns_none_when_unreachable(self):
        stream = dataset("ip", scale=SCALE, seed=1)
        # 600 bytes is far too little for CM to reach zero outliers.
        memory = minimum_memory_for_zero_outliers(
            "CM_fast", stream, low_bytes=512, high_bytes=600
        )
        assert memory is None

    def test_target_aae_search(self):
        stream = dataset("ip", scale=SCALE, seed=1)
        memory = minimum_memory_for_target_aae(
            "CU_fast", stream, target_aae=5.0, low_bytes=512, high_bytes=128 * 1024
        )
        assert memory is not None
        assert run_sketch("CU_fast", memory, stream).aae <= 5.0

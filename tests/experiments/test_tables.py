"""Table experiments and the text-table formatter."""

from __future__ import annotations

from repro.experiments import tables


def test_format_table_aligns_columns():
    text = tables.format_table(["name", "value"], [["a", 1], ["longer-name", 22]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "longer-name" in lines[3]


def test_format_table_empty_rows():
    text = tables.format_table(["only", "headers"], [])
    assert "only" in text


def test_table1_rows_cover_four_families():
    rows = tables.complexity_table_rows()
    assert len(rows) == 4
    assert rows[-1][0] == "ReliableSketch (Ours)"
    text = tables.complexity_table_text()
    assert "Heap-based" in text


def test_table3_rows_match_model():
    rows = tables.fpga_table_rows()
    modules = [row[0] for row in rows]
    assert modules[:3] == ["Hash", "ESbucket", "Emergency"]
    assert modules[3] == "Total"
    assert modules[4] == "Usage"
    text = tables.fpga_table_text()
    assert "ESbucket" in text and "340" in text


def test_table4_rows_match_published_usage():
    rows = {row[0]: row for row in tables.tofino_table_rows(layers=6)}
    assert rows["Stateful ALU"][1] == 12
    assert rows["Hash Bits"][1] == 541
    text = tables.tofino_table_text()
    assert "25.00%" in text

"""Parallel runner determinism: workers > 1 must be bit-identical to workers=1.

The process-pool fan-out (``experiments/parallel.py`` + ``run_grid``) is a
pure wall-clock optimisation; these tests pin that contract on a real pool
(two workers) and cover the ground-truth threading added alongside it.
"""

from __future__ import annotations

import pytest

from repro.experiments.parallel import parallel_map, resolve_workers
from repro.experiments.runner import (
    ExperimentSettings,
    minimum_memory_for_zero_outliers,
    run_competitors,
    run_grid,
    run_sketch,
)
from repro.streams import zipf_stream

ALGORITHMS = ("CM_fast", "Count")
MEMORY_POINTS = [2048.0, 8192.0]


def _stream():
    return zipf_stream(4000, skew=1.2, universe=600, seed=21)


def _report_tuple(run):
    report = run.report
    return (run.algorithm, run.memory_bytes, report.outliers, report.aae,
            report.are, report.max_error, report.evaluated_keys)


def _double(shared, task):
    return task * 2 + shared


class TestParallelMap:
    def test_sequential_and_pool_agree(self):
        tasks = list(range(7))
        sequential = parallel_map(_double, tasks, workers=1, shared=10)
        pooled = parallel_map(_double, tasks, workers=2, shared=10)
        assert sequential == pooled == [10 + 2 * t for t in tasks]

    def test_order_preserved(self):
        assert parallel_map(_double, [3, 1, 2], workers=2, shared=0) == [6, 2, 4]

    def test_empty_and_single_task(self):
        assert parallel_map(_double, [], workers=4, shared=0) == []
        assert parallel_map(_double, [5], workers=4, shared=1) == [11]

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        assert resolve_workers(None) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestRunGrid:
    def test_parallel_grid_bit_identical_to_sequential(self):
        stream = _stream()
        sequential = run_grid(
            ALGORITHMS, MEMORY_POINTS, stream,
            ExperimentSettings(tolerance=10, seed=3, batch_size=512, workers=1),
        )
        parallel = run_grid(
            ALGORITHMS, MEMORY_POINTS, stream,
            ExperimentSettings(tolerance=10, seed=3, batch_size=512, workers=2),
        )
        assert set(sequential) == set(parallel)
        for cell in sequential:
            assert _report_tuple(sequential[cell]) == _report_tuple(parallel[cell])
            # Pooled runs never ship the fitted sketch back; sequential runs
            # keep it for callers that introspect it.
            assert parallel[cell].sketch is None
            assert sequential[cell].sketch is not None

    def test_grid_covers_every_cell(self):
        grid = run_grid(ALGORITHMS, MEMORY_POINTS, _stream())
        assert set(grid) == {
            (name, memory) for name in ALGORITHMS for memory in MEMORY_POINTS
        }

    def test_run_competitors_still_keyed_by_name(self):
        runs = run_competitors(ALGORITHMS, 4096.0, _stream())
        assert set(runs) == set(ALGORITHMS)
        assert all(runs[name].algorithm == name for name in ALGORITHMS)

    def test_sharded_settings_build_sharded_sketches(self):
        run = run_sketch(
            "CM_fast", 4096.0, _stream(), ExperimentSettings(shards=3, batch_size=512)
        )
        assert run.sketch.parameters()["shards"] == 3
        # Sharded runs stay exact: a key's estimate comes from its owning shard.
        unsharded = run_sketch("CM_fast", 4096.0, _stream(), ExperimentSettings())
        assert run.report.evaluated_keys == unsharded.report.evaluated_keys


class TestGroundTruthThreading:
    def test_precomputed_counts_match_stream_counts(self):
        stream = _stream()
        with_counts = run_sketch(
            "CM_fast", 4096.0, stream, counts=dict(stream.counts())
        )
        without = run_sketch("CM_fast", 4096.0, stream)
        assert _report_tuple(with_counts) == _report_tuple(without)

    def test_memory_search_accepts_counts(self):
        stream = _stream()
        counts = stream.counts()
        found = minimum_memory_for_zero_outliers(
            "CM_fast", stream, ExperimentSettings(tolerance=50),
            low_bytes=512, high_bytes=256 * 1024, counts=counts,
        )
        reference = minimum_memory_for_zero_outliers(
            "CM_fast", stream, ExperimentSettings(tolerance=50),
            low_bytes=512, high_bytes=256 * 1024,
        )
        assert found == reference

"""Per-figure experiment functions: structure and qualitative shape.

These tests run each figure's experiment at a very small scale and assert the
*shape* the paper reports (who wins, directions of trends), not absolute
numbers — absolute values belong to the benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.experiments import deployment, error, outliers, parameters, sensing, speed

SCALE = 0.001
MEMORY_POINTS = [1024.0, 2048.0, 4096.0, 8192.0]


class TestOutliers:
    def test_fig4_reliable_reaches_zero_before_cm(self):
        curves = {
            c.algorithm: c
            for c in outliers.outliers_vs_memory(
                dataset_name="ip", tolerance=25, scale=SCALE,
                memory_points=MEMORY_POINTS,
                algorithms=("Ours", "CM_acc", "CM_fast"), seed=1,
            )
        }
        ours = curves["Ours"].zero_outlier_memory()
        cm = curves["CM_acc"].zero_outlier_memory()
        assert ours is not None
        assert cm is None or ours <= cm

    def test_fig5_reliable_needs_least_memory(self):
        result = outliers.zero_outlier_memory(
            dataset_names=("ip",), tolerance=25, scale=SCALE,
            algorithms=("Ours", "CM_acc", "CU_acc"), seed=1, high_megabytes=10.0,
        )["ip"]
        assert result["Ours"] is not None
        for other in ("CM_acc", "CU_acc"):
            assert result[other] is None or result["Ours"] <= result[other]

    def test_fig7_frequent_key_curves_cover_all_competitors(self):
        curves = outliers.frequent_key_outliers(
            threshold=100, scale=SCALE, memory_points=MEMORY_POINTS[:2],
            repetitions=1, seed=1,
        )
        names = {c.algorithm for c in curves}
        assert {"Ours", "PRECISION", "Elastic", "HashPipe", "SS"} == names
        ours = next(c for c in curves if c.algorithm == "Ours")
        assert min(ours.outliers) == 0


class TestError:
    def test_fig8_fig9_errors_shrink_with_memory(self):
        curves = error.average_error_sweep(
            dataset_name="ip", scale=SCALE, memory_points=MEMORY_POINTS,
            algorithms=("Ours", "CM_fast"), seed=1,
        )
        for curve in curves:
            assert curve.aae[-1] <= curve.aae[0]
            assert curve.are[-1] <= curve.are[0]

    def test_fig8_reliable_competitive_with_cm(self):
        """Under tight memory ReliableSketch clearly beats CM; with generous
        memory it stays comparable (the paper's "comparable to the best"
        claim), never pathologically worse."""
        curves = {
            c.algorithm: c
            for c in error.average_error_sweep(
                dataset_name="ip", scale=SCALE, memory_points=[1024.0, 8192.0],
                algorithms=("Ours", "CM_fast"), seed=1,
            )
        }
        tight_ours, generous_ours = curves["Ours"].aae
        tight_cm, generous_cm = curves["CM_fast"].aae
        assert tight_ours <= tight_cm
        assert generous_ours <= max(2.0 * generous_cm, 3.0)


class TestSpeed:
    def test_fig10_reports_positive_throughput_for_all(self):
        rows = speed.throughput_comparison(
            scale=SCALE, algorithms=("Ours", "Ours(Raw)", "CM_fast"), seed=1
        )
        assert all(row.insert_mops > 0 and row.query_mops > 0 for row in rows)
        by_name = {row.algorithm: row for row in rows}
        # The raw variant skips the mice filter and must insert faster.
        assert by_name["Ours(Raw)"].insert_mops > by_name["Ours"].insert_mops

    def test_fig16_hash_calls_converge_to_paper_limits(self):
        curves = {
            c.algorithm: c
            for c in speed.hash_call_profile(
                scale=SCALE, memory_points=[2048.0, 8192.0, 32768.0], seed=1
            )
        }
        # CM always does exactly `depth` calls per operation.
        assert all(calls == pytest.approx(3.0) for calls in curves["CM_fast"].insert_calls)
        # The raw variant approaches 1 call/insert with generous memory,
        # the filtered variant approaches 3 (2 filter calls + 1 layer call).
        assert curves["Ours(Raw)"].insert_calls[-1] < 1.5
        assert curves["Ours"].insert_calls[-1] < 3.5
        # Hash calls decrease (or stay flat) as memory grows.
        assert curves["Ours"].insert_calls[-1] <= curves["Ours"].insert_calls[0]


class TestParameters:
    def test_fig11_rw_sweep_structure(self):
        curves = parameters.rw_sweep(
            r_w_values=[2.0, 8.0], r_lambda_values=[2.5], scale=SCALE, seed=1
        )
        assert len(curves) == 1
        assert [p.parameter for p in curves[0].points] == [2.0, 8.0]
        found = [p.memory_bytes for p in curves[0].points if p.memory_bytes is not None]
        assert found  # at least one setting reaches zero outliers

    def test_fig13_rlambda_sweep_structure(self):
        curves = parameters.rlambda_sweep(
            r_lambda_values=[2.5, 9.0], r_w_values=[2.0], scale=SCALE, seed=1
        )
        assert len(curves) == 1
        assert len(curves[0].points) == 2

    def test_fig15_memory_decreases_with_larger_tolerance(self):
        result = parameters.lambda_sweep(
            dataset_names=("ip",), tolerances=[25.0, 100.0], scale=SCALE, seed=1
        )["ip"]
        by_tolerance = {p.parameter: p.memory_bytes for p in result}
        if by_tolerance[25.0] is not None and by_tolerance[100.0] is not None:
            assert by_tolerance[100.0] <= by_tolerance[25.0]


class TestSensing:
    def test_fig17_intervals_contain_truth(self):
        mice, elephants = sensing.sensed_intervals(
            scale=SCALE, memory_megabytes=4.0, sample_size=100, seed=1
        )
        assert mice  # the trace always has mice keys
        assert all(interval.contains_truth for interval in mice + elephants)

    def test_fig18_sensed_error_tracks_actual(self):
        points = sensing.sensed_vs_actual(scale=SCALE, memory_megabytes=2.0, seed=1)
        assert points
        # Sensed error is an upper bound on the actual error on average.
        assert all(p.mean_sensed_error >= p.actual_error - 1e-9 for p in points)

    def test_fig18b_sensed_error_decreases_with_memory(self):
        rows = sensing.sensed_error_vs_memory(
            scale=SCALE, memory_megabytes=[1.0, 4.0], seed=1
        )
        assert rows[1][1] <= rows[0][1]

    def test_fig19a_layer_distribution_decays(self):
        distributions = sensing.layer_distribution(
            scale=SCALE, memory_megabytes=[2.0], seed=1
        )
        per_layer = distributions[0].keys_per_layer
        assert per_layer[0] > per_layer[-1]
        assert sum(per_layer) > 0

    def test_fig19b_our_errors_bounded_cm_not(self):
        distribution = sensing.error_distribution(
            scale=SCALE, memory_megabytes=1.0, tolerance=25, seed=1
        )
        assert max(distribution["ours_actual"]) <= 25
        assert max(distribution["cm_actual"]) >= max(distribution["ours_actual"])
        # Sensed errors dominate actual errors key-by-key after sorting.
        assert max(distribution["ours_sensed"]) >= max(distribution["ours_actual"])


class TestDeployment:
    def test_fig20_outliers_decrease_with_sram(self):
        curve = deployment.testbed_accuracy(trace_name="hadoop", scale=0.001, seed=1)
        outlier_counts = [r.outliers for r in curve.results]
        assert outlier_counts[-1] <= outlier_counts[0]
        aae = [r.aae_kbps for r in curve.results]
        assert aae[-1] <= aae[0]

"""Windowed estimates vs exact per-window ground truth, across cadences.

The temporal layer's accuracy claim: for subtractable families (CM and
Count) a sliding-window read is *exactly* the sketch of the window slice —
so CM's one-sided guarantee (never underestimates) and Count's unbiasedness
carry over to any window unchanged.  Hypothesis drives the publish cadence
so window boundaries land at arbitrary positions relative to the stream.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.runner import run_windowed_fill
from repro.sketches.registry import build_sketch
from repro.streams.synthetic import zipf_stream
from repro.temporal import delta_sketch

MEMORY = 32 * 1024
STREAM = zipf_stream(3000, skew=1.1, seed=11)


@pytest.mark.parametrize("name", ["CM_fast", "Count"])
def test_window_counts_partition_the_stream(name):
    fill = run_windowed_fill(name, MEMORY, STREAM, epoch_items=500)
    first = fill.snapshots[0].epoch_id
    last = fill.snapshots[-1].epoch_id
    whole = fill.window_counts(STREAM, first, last)
    assert whole == dict(STREAM.counts())
    # Adjacent windows tile: summing per-epoch slices recovers the whole.
    rebuilt: dict = {}
    ids = [snapshot.epoch_id for snapshot in fill.snapshots]
    for earlier, later in zip(ids, ids[1:]):
        for key, value in fill.window_counts(STREAM, earlier, later).items():
            rebuilt[key] = rebuilt.get(key, 0) + value
    assert rebuilt == whole


@given(
    epoch_items=st.integers(57, 900),
    span=st.integers(1, 4),
)
@settings(max_examples=15, deadline=None)
def test_cm_window_bounds_hold_across_cadences(epoch_items, span):
    fill = run_windowed_fill("CM_fast", MEMORY, STREAM, epoch_items=epoch_items)
    ids = [snapshot.epoch_id for snapshot in fill.snapshots]
    if len(ids) < span + 1:
        return  # stream too short for this window at this cadence
    earlier_id, later_id = ids[-1 - span], ids[-1]
    window = delta_sketch(fill.snapshot(later_id), fill.snapshot(earlier_id))
    truth = fill.window_counts(STREAM, earlier_id, later_id)
    if not truth:
        return
    keys = list(truth)
    estimates = window.query_batch(keys)
    # CM's one-sided guarantee holds inside the window.
    assert all(int(e) >= truth[k] for k, e in zip(keys, estimates))
    # Bit-identity: the delta equals a fresh sketch fed only the slice.
    fresh = build_sketch("CM_fast", MEMORY, seed=0)
    low = fill.snapshot(earlier_id).items
    high = fill.snapshot(later_id).items
    fresh.insert_batch(
        [item.key for item in STREAM.items[low:high]],
        [item.value for item in STREAM.items[low:high]],
    )
    assert np.array_equal(estimates, fresh.query_batch(keys))


@given(epoch_items=st.integers(101, 700))
@settings(max_examples=10, deadline=None)
def test_count_window_bit_identity_across_cadences(epoch_items):
    fill = run_windowed_fill("Count", MEMORY, STREAM, epoch_items=epoch_items)
    ids = [snapshot.epoch_id for snapshot in fill.snapshots]
    if len(ids) < 3:
        return
    earlier_id, later_id = ids[-3], ids[-1]
    window = delta_sketch(fill.snapshot(later_id), fill.snapshot(earlier_id))
    fresh = build_sketch("Count", MEMORY, seed=0)
    low = fill.snapshot(earlier_id).items
    high = fill.snapshot(later_id).items
    fresh.insert_batch(
        [item.key for item in STREAM.items[low:high]],
        [item.value for item in STREAM.items[low:high]],
    )
    keys = list(fill.window_counts(STREAM, earlier_id, later_id))
    assert np.array_equal(window.query_batch(keys), fresh.query_batch(keys))


def test_windowed_fill_rejects_transport():
    from repro.experiments.runner import ExperimentSettings

    with pytest.raises(ValueError):
        run_windowed_fill(
            "CM_fast", MEMORY, STREAM, epoch_items=500,
            settings=ExperimentSettings(transport="inproc"),
        )


def test_window_counts_rejects_backward_window():
    fill = run_windowed_fill("CM_fast", MEMORY, STREAM, epoch_items=1000)
    ids = [snapshot.epoch_id for snapshot in fill.snapshots]
    with pytest.raises(ValueError):
        fill.window_counts(STREAM, ids[-1], ids[0])
    with pytest.raises(KeyError):
        fill.snapshot(10_000)

"""CLI entry point: argument parsing and a few fast end-to-end commands."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_accepts_all_registered_experiments():
    parser = build_parser()
    for experiment in ("table1", "table3", "table4", "fig4", "fig10", "fig20"):
        args = parser.parse_args([experiment])
        assert args.experiment == experiment


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig99"])


def test_scale_and_seed_options():
    args = build_parser().parse_args(["fig4", "--scale", "0.005", "--seed", "3", "--tolerance", "5"])
    assert args.scale == 0.005
    assert args.seed == 3
    assert args.tolerance == 5


def test_shards_and_workers_options():
    args = build_parser().parse_args(["fig10", "--shards", "4", "--workers", "0"])
    assert args.shards == 4
    assert args.workers == 0  # 0 = one worker per CPU core
    defaults = build_parser().parse_args(["fig10"])
    assert defaults.shards == 1
    assert defaults.workers == 1


def test_invalid_shards_and_workers_rejected():
    with pytest.raises(SystemExit):
        main(["fig4", "--shards", "0"])
    with pytest.raises(SystemExit):
        main(["fig4", "--workers", "-1"])


def test_shards_rejected_by_unsupporting_commands():
    # --shards changes measured results, so commands that cannot honour it
    # must reject it instead of silently ignoring it.
    for experiment in ("fig5", "fig7", "fig11", "fig16", "table1"):
        with pytest.raises(SystemExit):
            main([experiment, "--shards", "4"])
    # --shards 1 (the default, monolithic model) stays accepted everywhere.
    assert main(["table1", "--shards", "1"]) == 0


def test_table_commands_print_output(capsys):
    assert main(["table1"]) == 0
    assert main(["table3"]) == 0
    assert main(["table4"]) == 0
    output = capsys.readouterr().out
    assert "ReliableSketch (Ours)" in output
    assert "ESbucket" in output
    assert "Stateful ALU" in output


def test_transport_option_parsing():
    args = build_parser().parse_args(["fig4", "--shards", "2", "--transport", "inproc"])
    assert args.transport == "inproc"
    assert build_parser().parse_args(["fig4"]).transport is None
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig4", "--transport", "smoke-signals"])


def test_transport_rejected_by_unsupporting_commands():
    # --transport is a pure execution knob, but commands that would silently
    # ignore it must reject it (mirrors the --shards policy).
    for experiment in ("fig5", "fig10", "fig16", "table1", "ingest-worker"):
        with pytest.raises(SystemExit):
            main([experiment, "--transport", "inproc"])


def test_ingest_only_flags_rejected_elsewhere():
    # Mirrors the --shards policy: result-shaping ingest flags must never be
    # silently ignored by the figure/table commands.
    for flags in (["--algorithm", "CM_fast"], ["--count", "500"],
                  ["--skew", "2.0"], ["--memory-bytes", "1024"],
                  ["--connect", "x:1"], ["--verify"]):
        with pytest.raises(SystemExit):
            main(["fig4", *flags])


def test_ingest_worker_connection_refused_is_clean():
    # An unreachable collector must surface as an argparse error (exit 2),
    # not an OSError traceback.
    with pytest.raises(SystemExit) as excinfo:
        main(["ingest-worker", "--connect", "127.0.0.1:39997"])
    assert excinfo.value.code == 2


def test_ingest_collect_validation():
    with pytest.raises(SystemExit):
        main(["ingest-collect", "--algorithm", "Elastic"])  # unmergeable
    with pytest.raises(SystemExit):
        main(["ingest-collect", "--algorithm", "NoSuchSketch"])
    with pytest.raises(SystemExit):
        main(["ingest-collect", "--bind", "127.0.0.1:0"])  # bind needs tcp
    with pytest.raises(SystemExit):
        main(["ingest-collect", "--transport", "tcp", "--bind", "no-port"])


def test_ingest_collect_inproc_end_to_end(capsys):
    assert main([
        "ingest-collect", "--transport", "inproc", "--shards", "2",
        "--count", "4000", "--memory-bytes", "8192", "--verify",
    ]) == 0
    output = capsys.readouterr().out
    assert "2 workers over inproc" in output
    assert "bit-identical to single-node ingest: True" in output


def test_ingest_collect_tcp_self_hosted(capsys):
    assert main([
        "ingest-collect", "--transport", "tcp", "--shards", "2",
        "--count", "2000", "--memory-bytes", "8192",
    ]) == 0
    assert "tree-merged 2 snapshots" in capsys.readouterr().out


def test_fig17_command_runs_small(capsys):
    assert main(["fig17", "--scale", "0.001"]) == 0
    assert "containing truth" in capsys.readouterr().out


def test_fig19_command_runs_small(capsys):
    assert main(["fig19", "--scale", "0.001"]) == 0
    assert "KB" in capsys.readouterr().out


def test_kernel_option_applies_and_validates(monkeypatch):
    # --kernel is a bit-identical knob honoured by every command: it sets
    # the process default and exports REPRO_KERNEL for pool workers.
    import os

    from repro.kernels import dispatch

    monkeypatch.delenv(dispatch.KERNEL_ENV_VAR, raising=False)
    previous = dispatch._DEFAULT_OVERRIDE
    try:
        assert main(["table1", "--kernel", "python-replay"]) == 0
        assert dispatch.default_backend_name() == "python-replay"
        assert os.environ[dispatch.KERNEL_ENV_VAR] == "python-replay"
    finally:
        dispatch._DEFAULT_OVERRIDE = previous
        os.environ.pop(dispatch.KERNEL_ENV_VAR, None)
    # Unknown backends are an argparse error, not a traceback.
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig4", "--kernel", "sorcery"])
    assert build_parser().parse_args(["fig4"]).kernel is None


def test_kernel_numba_rejected_cleanly_when_missing(monkeypatch):
    from repro.kernels import dispatch

    if dispatch.is_backend_available("numba"):
        pytest.skip("numba installed: the clean-rejection path cannot trigger")
    monkeypatch.delenv(dispatch.KERNEL_ENV_VAR, raising=False)
    with pytest.raises(SystemExit):
        main(["table1", "--kernel", "numba"])


# --------------------------------------------------------------- serving CLI
def test_serving_flags_rejected_elsewhere():
    # Same policy as the ingest flags: serve/query-only flags must never be
    # silently ignored by other commands.
    for flags in (["--publish-every", "100"], ["--max-sessions", "1"],
                  ["--keys", "1,2"], ["--top-k", "3"], ["--stats"]):
        with pytest.raises(SystemExit):
            main(["fig4", *flags])
    with pytest.raises(SystemExit):
        main(["serve", "--keys", "1"])  # query-only flag on serve
    with pytest.raises(SystemExit):
        main(["query", "--publish-every", "5"])  # serve-only flag on query


def test_serving_validation():
    with pytest.raises(SystemExit):
        main(["serve", "--algorithm", "NoSuchSketch"])
    with pytest.raises(SystemExit):
        main(["serve", "--publish-every", "0"])
    with pytest.raises(SystemExit):
        main(["serve", "--max-sessions", "0"])
    with pytest.raises(SystemExit):
        main(["query", "--top-k", "0"])
    with pytest.raises(SystemExit):
        main(["query", "--connect", "127.0.0.1:39996"])  # no action flag
    # an unreachable server is a clean argparse error, not a traceback
    with pytest.raises(SystemExit) as excinfo:
        main(["query", "--connect", "127.0.0.1:39996", "--stats"])
    assert excinfo.value.code == 2


def test_async_serving_flags_policy():
    # The async flags obey the same never-silently-ignored policy.
    for flags in (["--async"], ["--max-inflight", "8"],
                  ["--drain-timeout", "1"], ["--backlog", "4"],
                  ["--pipeline", "4"]):
        with pytest.raises(SystemExit):
            main(["fig4", *flags])
    with pytest.raises(SystemExit):
        main(["query", "--async"])  # serve-only flag on query
    with pytest.raises(SystemExit):
        main(["serve", "--pipeline", "4"])  # query-only flag on serve


def test_async_serving_validation():
    # --max-inflight / --drain-timeout shape the async event loop only.
    with pytest.raises(SystemExit):
        main(["serve", "--max-inflight", "8"])
    with pytest.raises(SystemExit):
        main(["serve", "--drain-timeout", "2"])
    # --max-sessions counts sequential sessions; the async loop has none.
    with pytest.raises(SystemExit):
        main(["serve", "--async", "--max-sessions", "2"])
    with pytest.raises(SystemExit):
        main(["serve", "--async", "--max-inflight", "0"])
    with pytest.raises(SystemExit):
        main(["serve", "--async", "--drain-timeout", "0"])
    with pytest.raises(SystemExit):
        main(["serve", "--backlog", "0"])
    with pytest.raises(SystemExit):
        main(["query", "--connect", "127.0.0.1:1", "--keys", "1", "--pipeline", "0"])
    with pytest.raises(SystemExit):
        main(["query", "--connect", "127.0.0.1:1", "--stats", "--pipeline", "4"])


def test_query_pipeline_against_async_server(capsys):
    from repro.serve.async_server import AsyncServingSession
    from repro.serve.server import ServeConfig

    service = ServeConfig("CM_fast", 16384, seed=0).build_service()
    service.ingest([1, 1, 2])
    service.flush()
    with AsyncServingSession(service) as session:
        host, port = session.address
        assert main(["query", "--connect", f"{host}:{port}",
                     "--keys", "1,2,3", "--pipeline", "2"]) == 0
    output = capsys.readouterr().out
    assert "pipelined 3 requests, depth 2" in output
    assert "1: 2" in output and "2: 1" in output and "3: 0" in output


def test_ingest_collect_accepts_reliable_sketch(capsys):
    # PR 3 follow-on: Ours snapshots, so it can be collected remotely; the
    # verify path compares routed answers against local sharded ingest.
    assert main([
        "ingest-collect", "--transport", "inproc", "--shards", "2",
        "--algorithm", "Ours", "--count", "3000", "--memory-bytes", "16384",
        "--verify",
    ]) == 0
    output = capsys.readouterr().out
    assert "no lossless merge" in output
    assert "bit-identical to local sharded ingest: True" in output


def test_serve_and_query_end_to_end(capsys):
    import socket
    import threading

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    address = f"127.0.0.1:{port}"

    server = threading.Thread(
        target=main,
        args=(["serve", "--bind", address, "--algorithm", "CM_fast",
               "--memory-bytes", "16384", "--publish-every", "512",
               "--max-sessions", "2"],),
        daemon=True,
    )
    server.start()
    deadline = 50
    for _ in range(deadline):
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=0.2):
                break
        except OSError:
            import time

            time.sleep(0.1)
    # session 1: a writer pushing a synthetic stream (consumes the probe
    # connection slot above plus this one -> use two real sessions)
    assert main(["query", "--connect", address, "--count", "2000",
                 "--keys", "0,1", "--top-k", "3", "--stats"]) == 0
    output = capsys.readouterr().out
    assert "ingested 2000 items" in output
    assert "answered at epoch" in output
    assert '"epoch_id"' in output
    server.join(timeout=15)


def test_durability_flags_rejected_elsewhere(tmp_path):
    # Store and heartbeat flags obey the never-silently-ignored policy.
    store = str(tmp_path)
    for flags in (["--store", store], ["--store-retain", "2"],
                  ["--heartbeat-interval", "1"], ["--heartbeat-timeout", "1"]):
        with pytest.raises(SystemExit):
            main(["fig4", *flags])
    with pytest.raises(SystemExit):
        main(["store-inspect", "--store", store, "--store-retain", "2"])
    # store-* commands are nothing without a directory to operate on.
    for command in ("store-inspect", "store-verify", "store-compact"):
        with pytest.raises(SystemExit):
            main([command])


def test_durability_flag_validation(tmp_path):
    store = str(tmp_path)
    with pytest.raises(SystemExit):
        main(["store-compact", "--store", store, "--store-retain", "0"])
    with pytest.raises(SystemExit):
        main(["ingest-collect", "--partitions", "2",
              "--heartbeat-interval", "0"])
    with pytest.raises(SystemExit):
        main(["ingest-collect", "--partitions", "2",
              "--heartbeat-timeout", "-1"])
    # Heartbeats and persisted checkpoints exist only on the dynamic fleet.
    with pytest.raises(SystemExit):
        main(["ingest-collect", "--heartbeat-interval", "1"])
    with pytest.raises(SystemExit):
        main(["ingest-collect", "--store", store])
    # A resumed fleet carries history local re-ingest cannot mirror.
    with pytest.raises(SystemExit):
        main(["ingest-collect", "--partitions", "2", "--store", store,
              "--verify"])
    # The store persists snapshots, so the family must be snapshotable.
    with pytest.raises(SystemExit):
        main(["serve", "--algorithm", "Elastic", "--store", store])


def test_store_commands_on_empty_directory(tmp_path, capsys):
    store = str(tmp_path)
    assert main(["store-verify", "--store", store]) == 0
    assert "empty store (cold start)" in capsys.readouterr().out
    assert main(["store-inspect", "--store", store]) == 0
    assert '"ok": true' in capsys.readouterr().out


def test_ingest_collect_store_resume_end_to_end(tmp_path, capsys):
    store = str(tmp_path / "checkpoints")
    argv = ["ingest-collect", "--transport", "inproc", "--shards", "2",
            "--partitions", "4", "--count", "2000", "--memory-bytes", "8192",
            "--store", store]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert f"persisting partition checkpoints to {store}" in first
    assert "2000" in first
    # A second run resumes from disk: its totals include the first run's.
    assert main(argv) == 0
    assert "4000" in capsys.readouterr().out


def test_temporal_query_flag_validation():
    # --epoch / --window / --watch belong to query only.
    with pytest.raises(SystemExit):
        main(["fig4", "--epoch", "2"])
    with pytest.raises(SystemExit):
        main(["serve", "--window", "2"])
    # Mutually exclusive pin vs window; window needs keys; watch needs top-k.
    with pytest.raises(SystemExit):
        main(["query", "--keys", "1", "--epoch", "2", "--window", "3"])
    with pytest.raises(SystemExit):
        main(["query", "--window", "2"])
    with pytest.raises(SystemExit):
        main(["query", "--keys", "1", "--window", "0"])
    with pytest.raises(SystemExit):
        main(["query", "--keys", "1", "--epoch", "-1"])
    with pytest.raises(SystemExit):
        main(["query", "--keys", "1", "--watch", "3"])
    with pytest.raises(SystemExit):
        main(["query", "--top-k", "5", "--watch", "0"])
    with pytest.raises(SystemExit):
        main(["query", "--top-k", "5", "--interval", "0.5"])
    with pytest.raises(SystemExit):
        main(["query", "--top-k", "5", "--watch", "2", "--epoch", "1"])
    with pytest.raises(SystemExit):
        main(["query", "--keys", "1", "--epoch", "2", "--pipeline", "4"])


def test_ring_epochs_flag_validation():
    with pytest.raises(SystemExit):
        main(["query", "--ring-epochs", "4", "--stats"])
    with pytest.raises(SystemExit):
        main(["serve", "--ring-epochs", "0"])
    args = build_parser().parse_args(["serve", "--ring-epochs", "16"])
    assert args.ring_epochs == 16

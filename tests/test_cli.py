"""CLI entry point: argument parsing and a few fast end-to-end commands."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_accepts_all_registered_experiments():
    parser = build_parser()
    for experiment in ("table1", "table3", "table4", "fig4", "fig10", "fig20"):
        args = parser.parse_args([experiment])
        assert args.experiment == experiment


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig99"])


def test_scale_and_seed_options():
    args = build_parser().parse_args(["fig4", "--scale", "0.005", "--seed", "3", "--tolerance", "5"])
    assert args.scale == 0.005
    assert args.seed == 3
    assert args.tolerance == 5


def test_shards_and_workers_options():
    args = build_parser().parse_args(["fig10", "--shards", "4", "--workers", "0"])
    assert args.shards == 4
    assert args.workers == 0  # 0 = one worker per CPU core
    defaults = build_parser().parse_args(["fig10"])
    assert defaults.shards == 1
    assert defaults.workers == 1


def test_invalid_shards_and_workers_rejected():
    with pytest.raises(SystemExit):
        main(["fig4", "--shards", "0"])
    with pytest.raises(SystemExit):
        main(["fig4", "--workers", "-1"])


def test_shards_rejected_by_unsupporting_commands():
    # --shards changes measured results, so commands that cannot honour it
    # must reject it instead of silently ignoring it.
    for experiment in ("fig5", "fig7", "fig11", "fig16", "table1"):
        with pytest.raises(SystemExit):
            main([experiment, "--shards", "4"])
    # --shards 1 (the default, monolithic model) stays accepted everywhere.
    assert main(["table1", "--shards", "1"]) == 0


def test_table_commands_print_output(capsys):
    assert main(["table1"]) == 0
    assert main(["table3"]) == 0
    assert main(["table4"]) == 0
    output = capsys.readouterr().out
    assert "ReliableSketch (Ours)" in output
    assert "ESbucket" in output
    assert "Stateful ALU" in output


def test_transport_option_parsing():
    args = build_parser().parse_args(["fig4", "--shards", "2", "--transport", "inproc"])
    assert args.transport == "inproc"
    assert build_parser().parse_args(["fig4"]).transport is None
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig4", "--transport", "smoke-signals"])


def test_transport_rejected_by_unsupporting_commands():
    # --transport is a pure execution knob, but commands that would silently
    # ignore it must reject it (mirrors the --shards policy).
    for experiment in ("fig5", "fig10", "fig16", "table1", "ingest-worker"):
        with pytest.raises(SystemExit):
            main([experiment, "--transport", "inproc"])


def test_ingest_only_flags_rejected_elsewhere():
    # Mirrors the --shards policy: result-shaping ingest flags must never be
    # silently ignored by the figure/table commands.
    for flags in (["--algorithm", "CM_fast"], ["--count", "500"],
                  ["--skew", "2.0"], ["--memory-bytes", "1024"],
                  ["--connect", "x:1"], ["--verify"]):
        with pytest.raises(SystemExit):
            main(["fig4", *flags])


def test_ingest_worker_connection_refused_is_clean():
    # An unreachable collector must surface as an argparse error (exit 2),
    # not an OSError traceback.
    with pytest.raises(SystemExit) as excinfo:
        main(["ingest-worker", "--connect", "127.0.0.1:39997"])
    assert excinfo.value.code == 2


def test_ingest_collect_validation():
    with pytest.raises(SystemExit):
        main(["ingest-collect", "--algorithm", "Elastic"])  # unmergeable
    with pytest.raises(SystemExit):
        main(["ingest-collect", "--algorithm", "NoSuchSketch"])
    with pytest.raises(SystemExit):
        main(["ingest-collect", "--bind", "127.0.0.1:0"])  # bind needs tcp
    with pytest.raises(SystemExit):
        main(["ingest-collect", "--transport", "tcp", "--bind", "no-port"])


def test_ingest_collect_inproc_end_to_end(capsys):
    assert main([
        "ingest-collect", "--transport", "inproc", "--shards", "2",
        "--count", "4000", "--memory-bytes", "8192", "--verify",
    ]) == 0
    output = capsys.readouterr().out
    assert "2 workers over inproc" in output
    assert "bit-identical to single-node ingest: True" in output


def test_ingest_collect_tcp_self_hosted(capsys):
    assert main([
        "ingest-collect", "--transport", "tcp", "--shards", "2",
        "--count", "2000", "--memory-bytes", "8192",
    ]) == 0
    assert "tree-merged 2 snapshots" in capsys.readouterr().out


def test_fig17_command_runs_small(capsys):
    assert main(["fig17", "--scale", "0.001"]) == 0
    assert "containing truth" in capsys.readouterr().out


def test_fig19_command_runs_small(capsys):
    assert main(["fig19", "--scale", "0.001"]) == 0
    assert "KB" in capsys.readouterr().out


def test_kernel_option_applies_and_validates(monkeypatch):
    # --kernel is a bit-identical knob honoured by every command: it sets
    # the process default and exports REPRO_KERNEL for pool workers.
    import os

    from repro.kernels import dispatch

    monkeypatch.delenv(dispatch.KERNEL_ENV_VAR, raising=False)
    previous = dispatch._DEFAULT_OVERRIDE
    try:
        assert main(["table1", "--kernel", "python-replay"]) == 0
        assert dispatch.default_backend_name() == "python-replay"
        assert os.environ[dispatch.KERNEL_ENV_VAR] == "python-replay"
    finally:
        dispatch._DEFAULT_OVERRIDE = previous
        os.environ.pop(dispatch.KERNEL_ENV_VAR, None)
    # Unknown backends are an argparse error, not a traceback.
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig4", "--kernel", "sorcery"])
    assert build_parser().parse_args(["fig4"]).kernel is None


def test_kernel_numba_rejected_cleanly_when_missing(monkeypatch):
    from repro.kernels import dispatch

    if dispatch.is_backend_available("numba"):
        pytest.skip("numba installed: the clean-rejection path cannot trigger")
    monkeypatch.delenv(dispatch.KERNEL_ENV_VAR, raising=False)
    with pytest.raises(SystemExit):
        main(["table1", "--kernel", "numba"])

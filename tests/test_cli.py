"""CLI entry point: argument parsing and a few fast end-to-end commands."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_accepts_all_registered_experiments():
    parser = build_parser()
    for experiment in ("table1", "table3", "table4", "fig4", "fig10", "fig20"):
        args = parser.parse_args([experiment])
        assert args.experiment == experiment


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig99"])


def test_scale_and_seed_options():
    args = build_parser().parse_args(["fig4", "--scale", "0.005", "--seed", "3", "--tolerance", "5"])
    assert args.scale == 0.005
    assert args.seed == 3
    assert args.tolerance == 5


def test_shards_and_workers_options():
    args = build_parser().parse_args(["fig10", "--shards", "4", "--workers", "0"])
    assert args.shards == 4
    assert args.workers == 0  # 0 = one worker per CPU core
    defaults = build_parser().parse_args(["fig10"])
    assert defaults.shards == 1
    assert defaults.workers == 1


def test_invalid_shards_and_workers_rejected():
    with pytest.raises(SystemExit):
        main(["fig4", "--shards", "0"])
    with pytest.raises(SystemExit):
        main(["fig4", "--workers", "-1"])


def test_shards_rejected_by_unsupporting_commands():
    # --shards changes measured results, so commands that cannot honour it
    # must reject it instead of silently ignoring it.
    for experiment in ("fig5", "fig7", "fig11", "fig16", "table1"):
        with pytest.raises(SystemExit):
            main([experiment, "--shards", "4"])
    # --shards 1 (the default, monolithic model) stays accepted everywhere.
    assert main(["table1", "--shards", "1"]) == 0


def test_table_commands_print_output(capsys):
    assert main(["table1"]) == 0
    assert main(["table3"]) == 0
    assert main(["table4"]) == 0
    output = capsys.readouterr().out
    assert "ReliableSketch (Ours)" in output
    assert "ESbucket" in output
    assert "Stateful ALU" in output


def test_fig17_command_runs_small(capsys):
    assert main(["fig17", "--scale", "0.001"]) == 0
    assert "containing truth" in capsys.readouterr().out


def test_fig19_command_runs_small(capsys):
    assert main(["fig19", "--scale", "0.001"]) == 0
    assert "KB" in capsys.readouterr().out

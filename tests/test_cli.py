"""CLI entry point: argument parsing and a few fast end-to-end commands."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_accepts_all_registered_experiments():
    parser = build_parser()
    for experiment in ("table1", "table3", "table4", "fig4", "fig10", "fig20"):
        args = parser.parse_args([experiment])
        assert args.experiment == experiment


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig99"])


def test_scale_and_seed_options():
    args = build_parser().parse_args(["fig4", "--scale", "0.005", "--seed", "3", "--tolerance", "5"])
    assert args.scale == 0.005
    assert args.seed == 3
    assert args.tolerance == 5


def test_table_commands_print_output(capsys):
    assert main(["table1"]) == 0
    assert main(["table3"]) == 0
    assert main(["table4"]) == 0
    output = capsys.readouterr().out
    assert "ReliableSketch (Ours)" in output
    assert "ESbucket" in output
    assert "Stateful ALU" in output


def test_fig17_command_runs_small(capsys):
    assert main(["fig17", "--scale", "0.001"]) == 0
    assert "containing truth" in capsys.readouterr().out


def test_fig19_command_runs_small(capsys):
    assert main(["fig19", "--scale", "0.001"]) == 0
    assert "KB" in capsys.readouterr().out

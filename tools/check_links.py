#!/usr/bin/env python3
"""Fail on broken intra-repository links in the Markdown docs.

Checks every ``[text](target)`` in ``README.md`` and ``docs/*.md``:

* relative targets must resolve to an existing file or directory
  (anchors are stripped; ``#section`` anchors themselves are not verified);
* absolute paths and bare anchors are rejected (not portable across
  checkouts / rendered views);
* external URLs (``http://``, ``https://``, ``mailto:``) are skipped —
  this is an offline, deterministic check.

Run from the repository root (CI's docs job does)::

    python tools/check_links.py

Exits non-zero listing every broken link.  Also exercised by
``tests/test_docs_links.py`` so the tier-1 suite catches breakage locally.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline Markdown links; images share the syntax via the optional ``!``.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def iter_markdown_files(root: Path) -> list[Path]:
    """The documentation set this repository promises to keep link-clean."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def check_file(path: Path, root: Path) -> list[str]:
    """Return one human-readable error per broken link in ``path``."""
    errors = []
    for line_number, line in enumerate(path.read_text().splitlines(), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            where = f"{path.relative_to(root)}:{line_number}"
            if target.startswith("#"):
                # Bare anchors depend on the renderer's heading-slug rules;
                # the docs link to files instead.
                errors.append(f"{where}: bare anchor link {target!r}")
                continue
            if target.startswith("/"):
                errors.append(f"{where}: absolute path {target!r}")
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                errors.append(f"{where}: broken link {target!r}")
    return errors


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    files = iter_markdown_files(root)
    errors = [error for path in files for error in check_file(path, root)]
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken links'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
